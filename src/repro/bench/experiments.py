"""One function per reconstructed experiment (E1–E24).

Each ``run_eN`` returns the table rows the corresponding paper table/figure
would carry; the ``benchmarks/bench_eN_*.py`` modules execute them under
pytest-benchmark and print them.  Run everything standalone with::

    python -m repro.bench.experiments

Sizes are tuned so the full suite completes in a few minutes of pure
Python; see DESIGN.md for the scale-substitution rationale.
"""

from __future__ import annotations

import math
import os
import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.dijkstra import bidirectional_dijkstra, dijkstra_distance
from repro.baselines.propagation import PropagationEngine
from repro.baselines.recompute import RecomputeEngine
from repro.baselines.streaming_engine import ContinuousPairwiseEngine
from repro.bench.harness import run_query_workload, time_callable
from repro.bench.workloads import build_workload
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import DensePlane, HubIndex
from repro.core.pruning import PruningPolicy
from repro.core.config import SGraphConfig
from repro.graph.datasets import DATASETS, load_dataset, load_scaled
from repro.graph.generators import rmat_graph
from repro.graph.stats import profile_graph, sample_vertex_pairs
from repro.sgraph import SGraph
from repro.streaming.ingest import IngestEngine
from repro.streaming.scheduler import EpochScheduler
from repro.streaming.versioning import VersionedStore
from repro.streaming.update import batched
from repro.streaming.workload import (
    insert_only_stream,
    mixed_stream,
    sliding_window_stream,
)

Row = Dict[str, object]

#: datasets used by the per-dataset experiments (kept to three for runtime)
CORE_DATASETS = ("social-pl", "road-grid", "collab-sw")

#: hub strategy per topology: degree hubs are meaningless on a bounded-degree
#: lattice (E7 quantifies this), so road graphs use spread-out hubs — the
#: same per-graph tuning the landmark literature applies.
DATASET_HUB_STRATEGY = {"road-grid": "far-apart"}


def _strategy_for(dataset: str) -> str:
    return DATASET_HUB_STRATEGY.get(dataset, "degree")


def _pct(x: float) -> float:
    return round(100.0 * x, 2)


def _ms(x: float) -> float:
    return round(1e3 * x, 3)


# ---------------------------------------------------------------------------
# E1 — dataset table
# ---------------------------------------------------------------------------

def run_e1_datasets() -> List[Row]:
    """Structural profile of every dataset proxy (the paper's Table 1)."""
    rows: List[Row] = []
    for name, spec in DATASETS.items():
        graph = load_dataset(name)
        row: Row = {"dataset": name, "models": spec.stands_in_for}
        row.update(profile_graph(graph).as_row())
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E2 — activation fraction per pruning policy (the headline figure)
# ---------------------------------------------------------------------------

def run_e2_activations(num_pairs: int = 24) -> List[Row]:
    """Mean activation fraction by pruning policy and dataset.

    Claim validated: upper-bound-only pruning removes about half of the
    activations of the unpruned propagation model; SGraph's lower-bound
    pruning activates under ~1% of the vertices.
    """
    rows: List[Row] = []
    for dataset in CORE_DATASETS:
        wl = build_workload(dataset, num_pairs=num_pairs,
                            hub_strategy=_strategy_for(dataset))
        engines: List[Tuple[str, Callable]] = [
            ("propagate/none",
             PropagationEngine(wl.graph, policy=PruningPolicy.NONE).distance),
            ("propagate/upper-only",
             PropagationEngine(wl.graph, index=wl.index,
                               policy=PruningPolicy.UPPER_ONLY).distance),
            ("propagate/upper+lower",
             PropagationEngine(wl.graph, index=wl.index,
                               policy=PruningPolicy.UPPER_AND_LOWER).distance),
        ]
        sgraph_engine = PairwiseEngine(
            wl.graph, index=wl.index, policy=PruningPolicy.UPPER_AND_LOWER
        )
        for label, query in engines + [("sgraph (ordered)", None)]:
            if query is None:
                agg = run_query_workload(sgraph_engine.best_cost, wl.pairs)
            else:
                agg = run_query_workload(
                    lambda s, t, q=query: _unwrap(q(s, t)), wl.pairs
                )
            rows.append({
                "dataset": dataset,
                "engine": label,
                "act/query": round(agg.mean_activations, 1),
                "act%": _pct(agg.mean_activation_fraction(wl.num_vertices)),
                "index-only%": _pct(agg.answered_by_index / agg.total),
            })
    return rows


def _unwrap(result) -> Tuple[float, object]:
    return result.value, result.stats


def _dense_engine_for(wl, policy: PruningPolicy) -> PairwiseEngine:
    """A dense-plane-served engine over a workload's frozen state.

    Mirrors what a published :class:`FrozenView` serves: freeze the live
    hub index (a no-op after the first call), adopt the tables by reference
    over the snapshot, and attach the CSR + numpy-table plane.
    """
    snapshot = wl.graph.snapshot()
    index = wl.index
    fwd, bwd = index.freeze()
    frozen = HubIndex.from_tables(
        snapshot, index.hubs, index.semiring, fwd,
        backward_tables=bwd if snapshot.directed else None,
        copy=False,
    )
    plane = DensePlane.build(snapshot, index.hubs, fwd, bwd)
    return PairwiseEngine(snapshot, index=frozen, policy=policy, dense=plane)


# ---------------------------------------------------------------------------
# E3 — query latency vs baselines
# ---------------------------------------------------------------------------

def run_e3_latency(num_pairs: int = 24, backend: str = "auto") -> List[Row]:
    """Mean distance-query latency per engine; speedup relative to the
    exhaustive recompute model (claim: several orders of magnitude).

    ``backend="dense"`` serves the two index-using engines from the dense
    plane (flat-array search over CSR + numpy hub tables); ``"auto"`` and
    ``"dict"`` keep the dict reference path this table historically showed.
    """
    rows: List[Row] = []
    for dataset in CORE_DATASETS:
        wl = build_workload(dataset, num_pairs=num_pairs,
                            hub_strategy=_strategy_for(dataset))
        recompute = RecomputeEngine(wl.graph)
        if backend == "dense":
            ub_engine = _dense_engine_for(wl, PruningPolicy.UPPER_ONLY)
            sg_engine = _dense_engine_for(wl, PruningPolicy.UPPER_AND_LOWER)
        else:
            ub_engine = PairwiseEngine(wl.graph, index=wl.index,
                                       policy=PruningPolicy.UPPER_ONLY)
            sg_engine = PairwiseEngine(wl.graph, index=wl.index,
                                       policy=PruningPolicy.UPPER_AND_LOWER)
        contenders: List[Tuple[str, Callable]] = [
            ("recompute", lambda s, t: _unwrap(recompute.distance(s, t))),
            ("dijkstra", lambda s, t: dijkstra_distance(wl.graph, s, t)),
            ("bidirectional", lambda s, t: bidirectional_dijkstra(wl.graph, s, t)),
            ("upper-only", ub_engine.best_cost),
            ("sgraph", sg_engine.best_cost),
        ]
        base_latency = None
        for label, query in contenders:
            agg = run_query_workload(query, wl.pairs)
            if base_latency is None:
                base_latency = agg.mean_elapsed
            rows.append({
                "dataset": dataset,
                "engine": label,
                "mean_ms": _ms(agg.mean_elapsed),
                "p99_ms": _ms(agg.p(0.99)),
                "speedup": round(base_latency / max(agg.mean_elapsed, 1e-9), 1),
            })
    return rows


# ---------------------------------------------------------------------------
# E4 — latency and activations by query type
# ---------------------------------------------------------------------------

def run_e4_query_types(num_pairs: int = 24) -> List[Row]:
    """All four pairwise query kinds through the SGraph facade."""
    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        graph = load_dataset(dataset)
        sg = SGraph(graph=graph, config=SGraphConfig(
            num_hubs=16, hub_strategy=_strategy_for(dataset),
            queries=("distance", "hops", "capacity")))
        sg.rebuild_indexes()  # build outside the timed region
        pairs = sample_vertex_pairs(graph, num_pairs, seed=11, min_hops=2)
        kinds: List[Tuple[str, Callable]] = [
            ("distance", sg.distance),
            ("hops", sg.hop_distance),
            ("reachability", sg.reachable),
            ("bottleneck", sg.bottleneck),
        ]
        for label, query in kinds:
            agg = run_query_workload(
                lambda s, t, q=query: _unwrap(q(s, t)), pairs
            )
            rows.append({
                "dataset": dataset,
                "query": label,
                "mean_ms": _ms(agg.mean_elapsed),
                "act/query": round(agg.mean_activations, 1),
                "index-only%": _pct(agg.answered_by_index / agg.total),
            })
    return rows


# ---------------------------------------------------------------------------
# E5 — ingestion throughput
# ---------------------------------------------------------------------------

def run_e5_ingest(num_updates: int = 3000) -> List[Row]:
    """Updates/second by stream shape and index maintenance load.

    Claim validated (relative form): ingestion sustains high update rates
    and the hub index costs a bounded constant factor over raw ingestion.
    """
    rows: List[Row] = []
    for stream_name, stream_fn in (
        ("insert-only", insert_only_stream),
        ("sliding-window", sliding_window_stream),
        ("mixed-80/20", lambda g, n, seed=0: mixed_stream(g, n, 0.8, seed=seed)),
    ):
        for label, with_index in (("graph-only", False), ("graph+index(k=16)", True)):
            graph = load_dataset("social-pl")
            listeners = []
            if with_index:
                listeners.append(HubIndex.build(graph, 16))
            engine = IngestEngine(graph, listeners)
            updates = list(stream_fn(graph, num_updates, seed=5))
            stats = engine.apply_all(updates)
            rows.append({
                "stream": stream_name,
                "pipeline": label,
                "updates": stats.applied,
                "ups": round(stats.updates_per_second),
                "settled/update": round(
                    stats.maintenance_settled / max(stats.applied, 1), 2),
            })
    return rows


# ---------------------------------------------------------------------------
# E6 — incremental maintenance vs full rebuild
# ---------------------------------------------------------------------------

def run_e6_maintenance(batch_sizes: Sequence[int] = (1, 10, 100, 1000)) -> List[Row]:
    """Per-batch index maintenance cost: incremental repair vs full rebuild."""
    rows: List[Row] = []
    for batch_size in batch_sizes:
        graph = load_dataset("social-pl")
        index = HubIndex.build(graph, 16)
        engine = IngestEngine(graph, [index])
        updates = list(sliding_window_stream(graph, 5 * batch_size, seed=9))
        batches = list(batched(iter(updates), batch_size))

        incr_seconds = 0.0
        for batch in batches:
            start = time.perf_counter()
            for update in batch:
                engine.apply_update(update)
            incr_seconds += time.perf_counter() - start
        incr_per_batch = incr_seconds / len(batches)

        rebuild_per_batch = time_callable(index.rebuild, repeat=2)
        rows.append({
            "batch": batch_size,
            "incremental_ms": _ms(incr_per_batch),
            "rebuild_ms": _ms(rebuild_per_batch),
            "speedup": round(rebuild_per_batch / max(incr_per_batch, 1e-9), 1),
        })
    return rows


# ---------------------------------------------------------------------------
# E7 — hub-count and strategy sensitivity
# ---------------------------------------------------------------------------

def run_e7_hubs(
    hub_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    num_pairs: int = 24,
) -> List[Row]:
    """Bound tightness vs hub count k and selection strategy."""
    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        graph = load_dataset(dataset)
        pairs = sample_vertex_pairs(graph, num_pairs, seed=13, min_hops=2)
        for k in hub_counts:
            index = HubIndex.build(graph, k, strategy="degree")
            engine = PairwiseEngine(graph, index=index)
            agg = run_query_workload(engine.best_cost, pairs)
            rows.append({
                "dataset": dataset,
                "strategy": "degree",
                "k": k,
                "act%": _pct(agg.mean_activation_fraction(graph.num_vertices)),
                "index-only%": _pct(agg.answered_by_index / agg.total),
                "mean_ms": _ms(agg.mean_elapsed),
            })
        for strategy in ("random", "far-apart"):
            index = HubIndex.build(graph, 16, strategy=strategy, seed=3)
            engine = PairwiseEngine(graph, index=index)
            agg = run_query_workload(engine.best_cost, pairs)
            rows.append({
                "dataset": dataset,
                "strategy": strategy,
                "k": 16,
                "act%": _pct(agg.mean_activation_fraction(graph.num_vertices)),
                "index-only%": _pct(agg.answered_by_index / agg.total),
                "mean_ms": _ms(agg.mean_elapsed),
            })
    return rows


# ---------------------------------------------------------------------------
# E8 — query latency under concurrent update load
# ---------------------------------------------------------------------------

def run_e8_concurrent(
    update_rates: Sequence[int] = (10, 100, 500),
    rounds: int = 10,
    queries_per_round: int = 10,
) -> List[Row]:
    """Query latency percentiles while the graph is being updated."""
    rows: List[Row] = []
    for updates_per_round in update_rates:
        graph = load_dataset("social-pl")
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=16))
        sg.distance(*next(iter(sample_vertex_pairs(graph, 1, seed=1))))  # build index
        pairs = sample_vertex_pairs(graph, 64, seed=17, min_hops=2)
        updates = sliding_window_stream(
            graph, updates_per_round * rounds, seed=23
        )
        scheduler = EpochScheduler(sg, sg.distance)
        report = scheduler.run(
            updates, pairs,
            updates_per_round=updates_per_round,
            queries_per_round=queries_per_round,
        )
        row: Row = {"updates/round": updates_per_round}
        row.update(report.as_row())
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E9 — crossover vs the continuous streaming engine
# ---------------------------------------------------------------------------

def run_e9_crossover(
    source_counts: Sequence[int] = (1, 4, 16, 64),
    num_updates: int = 400,
    num_queries: int = 200,
) -> List[Row]:
    """Total (update + query) time: SGraph vs continuous per-source
    maintenance, sweeping the number of distinct query sources.

    Shape validated: continuous maintenance wins only when the query working
    set is tiny; SGraph's cost is independent of it.
    """
    rows: List[Row] = []
    for num_sources in source_counts:
        # --- SGraph ---------------------------------------------------------
        graph = load_dataset("collab-sw")
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=16))
        pairs = _pairs_with_sources(graph, num_sources, num_queries, seed=31)
        sg.distance(*pairs[0])  # force index build outside the timed region
        updates = list(sliding_window_stream(graph, num_updates, seed=37))
        start = time.perf_counter()
        for update in updates:
            sg.apply_update(update)
        sg_update = time.perf_counter() - start
        start = time.perf_counter()
        for s, t in pairs:
            sg.distance(s, t)
        sg_query = time.perf_counter() - start

        # --- continuous maintenance ------------------------------------------
        graph2 = load_dataset("collab-sw")
        cont = ContinuousPairwiseEngine(graph2)
        cont.register_pairs(pairs)
        ingest = IngestEngine(graph2, [cont])
        updates2 = list(sliding_window_stream(graph2, num_updates, seed=37))
        start = time.perf_counter()
        for update in updates2:
            ingest.apply_update(update)
        cont_update = time.perf_counter() - start
        start = time.perf_counter()
        for s, t in pairs:
            cont.distance(s, t)
        cont_query = time.perf_counter() - start

        rows.append({
            "sources": num_sources,
            "sgraph_total_ms": _ms(sg_update + sg_query),
            "continuous_total_ms": _ms(cont_update + cont_query),
            "winner": ("continuous"
                       if cont_update + cont_query < sg_update + sg_query
                       else "sgraph"),
        })
    return rows


def _pairs_with_sources(
    graph, num_sources: int, num_queries: int, seed: int
) -> List[Tuple[int, int]]:
    import random

    base = sample_vertex_pairs(graph, max(num_sources, 8), seed=seed, min_hops=2)
    sources = [s for s, _t in base][:num_sources]
    targets = [t for _s, t in sample_vertex_pairs(graph, 64, seed=seed + 1)]
    rng = random.Random(seed + 2)
    return [
        (rng.choice(sources), rng.choice(targets)) for _ in range(num_queries)
    ]


# ---------------------------------------------------------------------------
# E10 — index size
# ---------------------------------------------------------------------------

def run_e10_memory(
    hub_counts: Sequence[int] = (4, 16, 64),
    scales: Sequence[float] = (0.5, 1.0, 2.0),
) -> List[Row]:
    """Index entries and estimated bytes vs hub count and graph scale."""
    rows: List[Row] = []
    for scale in scales:
        graph = load_scaled("social-pl", scale)
        for k in hub_counts:
            index = HubIndex.build(graph, k)
            rows.append({
                "scale": scale,
                "|V|": graph.num_vertices,
                "k": k,
                "entries": index.size_entries(),
                "approx_MB": round(index.size_bytes() / 2**20, 2),
                "entries/vertex": round(
                    index.size_entries() / graph.num_vertices, 1),
            })
    return rows


# ---------------------------------------------------------------------------
# E11 (ablation) — bound tightness by hub strategy and count
# ---------------------------------------------------------------------------

def run_e11_bound_tightness(num_pairs: int = 48) -> List[Row]:
    """Bound-gap distribution per hub configuration.

    The ablation behind E2/E7: pruning power is bound tightness.  Reports
    the fraction of pairs whose bounds close exactly (answerable with zero
    traversal) and the gap-ratio percentiles.
    """
    from repro.core.diagnostics import bound_gap_profile

    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        graph = load_dataset(dataset)
        pairs = sample_vertex_pairs(graph, num_pairs, seed=51, min_hops=2)
        configs = [("degree", 4), ("degree", 16), ("degree", 64),
                   ("random", 16), ("far-apart", 16)]
        for strategy, k in configs:
            index = HubIndex.build(graph, k, strategy=strategy, seed=3)
            report = bound_gap_profile(index, pairs)
            row: Row = {"dataset": dataset, "strategy": strategy, "k": k}
            row.update(report.as_row())
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E12 (extension) — bounded-error approximation trade-off
# ---------------------------------------------------------------------------

def run_e12_tolerance(
    tolerances: Sequence[float] = (0.0, 0.1, 0.25, 0.5, 1.0),
    num_pairs: int = 24,
) -> List[Row]:
    """Latency/accuracy trade: activations and index-only answers vs the
    allowed error factor, plus the error actually incurred."""
    rows: List[Row] = []
    graph = load_dataset("social-pl")
    index = HubIndex.build(graph, 16)
    engine = PairwiseEngine(graph, index=index)
    pairs = sample_vertex_pairs(graph, num_pairs, seed=53, min_hops=2)
    exact = {pair: engine.best_cost(*pair)[0] for pair in pairs}
    for tolerance in tolerances:
        agg = run_query_workload(
            lambda s, t, tol=tolerance: engine.best_cost(s, t, tolerance=tol),
            pairs,
        )
        worst_error = 0.0
        for pair in pairs:
            value, _stats = engine.best_cost(*pair, tolerance=tolerance)
            if exact[pair] > 0:
                worst_error = max(worst_error, value / exact[pair] - 1.0)
        rows.append({
            "tolerance": tolerance,
            "act/query": round(agg.mean_activations, 1),
            "index-only%": _pct(agg.answered_by_index / agg.total),
            "mean_ms": _ms(agg.mean_elapsed),
            "worst_err%": _pct(worst_error),
        })
    return rows


# ---------------------------------------------------------------------------
# E13 (extension) — directed graphs
# ---------------------------------------------------------------------------

def run_e13_directed(num_pairs: int = 20) -> List[Row]:
    """Pruning effectiveness on a *directed* web-graph proxy.

    Directed graphs double the index (per-hub forward and backward trees)
    and asymmetric reachability makes the lower bound's unreachability
    proofs do real work — many directed pairs simply have no path, and the
    index answers those instantly.
    """
    graph = load_dataset("web-dir")
    index = HubIndex.build(graph, 16, strategy="degree")
    engines: List[Tuple[str, object]] = [
        ("none", PairwiseEngine(graph, policy=PruningPolicy.NONE)),
        ("upper-only", PairwiseEngine(graph, index=index,
                                      policy=PruningPolicy.UPPER_ONLY)),
        ("sgraph", PairwiseEngine(graph, index=index,
                                  policy=PruningPolicy.UPPER_AND_LOWER)),
    ]
    # Directed pairs: sample from all vertices, not just mutually reachable
    # ones, so the unreachable-pair behaviour is part of the measurement.
    import random

    rng = random.Random(61)
    vertices = list(graph.vertices())
    pairs = []
    while len(pairs) < num_pairs:
        s, t = rng.choice(vertices), rng.choice(vertices)
        if s != t:
            pairs.append((s, t))
    rows: List[Row] = []
    for label, engine in engines:
        agg = run_query_workload(engine.best_cost, pairs)
        rows.append({
            "engine": label,
            "act/query": round(agg.mean_activations, 1),
            "act%": _pct(agg.mean_activation_fraction(graph.num_vertices)),
            "index-only%": _pct(agg.answered_by_index / agg.total),
            "mean_ms": _ms(agg.mean_elapsed),
        })
    return rows


# ---------------------------------------------------------------------------
# E14 (extension) — one-to-many amortization
# ---------------------------------------------------------------------------

def run_e14_one_to_many(
    target_counts: Sequence[int] = (1, 4, 16, 64),
) -> List[Row]:
    """Activations and latency: one shared multi-target search vs per-target
    single queries, sweeping the target-set size."""
    graph = load_dataset("social-pl")
    index = HubIndex.build(graph, 16)
    engine = PairwiseEngine(graph, index=index)
    pairs = sample_vertex_pairs(graph, 80, seed=71, min_hops=2)
    source = pairs[0][0]
    all_targets = [t for _s, t in pairs]
    rows: List[Row] = []
    for count in target_counts:
        targets = all_targets[:count]
        start = time.perf_counter()
        _results, many_stats = engine.one_to_many(source, targets)
        many_seconds = time.perf_counter() - start
        singles_activations = 0
        start = time.perf_counter()
        for t in targets:
            _v, st_single = engine.best_cost(source, t)
            singles_activations += st_single.activations
        singles_seconds = time.perf_counter() - start
        rows.append({
            "targets": count,
            "many_act": many_stats.activations,
            "singles_act": singles_activations,
            "many_ms": _ms(many_seconds),
            "singles_ms": _ms(singles_seconds),
            "act_saving": round(
                singles_activations / max(many_stats.activations, 1), 2),
        })
    return rows


# ---------------------------------------------------------------------------
# E15 (extension) — adaptive strategy selection
# ---------------------------------------------------------------------------

def run_e15_adaptive(num_pairs: int = 24) -> List[Row]:
    """Adaptive per-query dispatch vs always-pruned and always-plain.

    The adaptive engine should match the better of the two fixed strategies
    on every topology — tight-bound graphs dispatch to pruned search,
    loose-bound graphs to plain bidirectional.
    """
    from repro.core.adaptive import AdaptiveEngine

    rows: List[Row] = []
    for dataset in ("social-pl", "collab-sw", "road-grid"):
        wl = build_workload(dataset, num_pairs=num_pairs,
                            hub_strategy=_strategy_for(dataset))
        adaptive = AdaptiveEngine(wl.graph, wl.index)
        contenders: List[Tuple[str, Callable]] = [
            ("always-pruned",
             PairwiseEngine(wl.graph, index=wl.index,
                            policy=PruningPolicy.UPPER_AND_LOWER).best_cost),
            ("always-plain",
             PairwiseEngine(wl.graph, index=wl.index,
                            policy=PruningPolicy.UPPER_ONLY).best_cost),
            ("adaptive", adaptive.best_cost),
        ]
        for label, query in contenders:
            agg = run_query_workload(query, wl.pairs)
            row: Row = {
                "dataset": dataset,
                "engine": label,
                "mean_ms": _ms(agg.mean_elapsed),
                "act/query": round(agg.mean_activations, 1),
            }
            if label == "adaptive":
                row["dispatch"] = str(adaptive.dispatch_counts())
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E16 (extension) — third algebra: most-reliable path
# ---------------------------------------------------------------------------

def run_e16_reliability(num_pairs: int = 20) -> List[Row]:
    """Pruning effectiveness under the multiplicative reliability algebra.

    Generality check: the same index/bound machinery, instantiated with the
    probability-product semiring, prunes most-reliable-path queries on a
    sensor-mesh proxy whose weights are link success probabilities.
    """
    from repro.core.semiring import RELIABILITY_PRODUCT

    graph = load_dataset("sensor-rel")
    index = HubIndex.build(graph, 16, semiring=RELIABILITY_PRODUCT)
    engines: List[Tuple[str, PairwiseEngine]] = [
        ("none", PairwiseEngine(graph, policy=PruningPolicy.NONE,
                                semiring=RELIABILITY_PRODUCT)),
        ("upper-only", PairwiseEngine(graph, index=index,
                                      policy=PruningPolicy.UPPER_ONLY)),
        ("sgraph", PairwiseEngine(graph, index=index,
                                  policy=PruningPolicy.UPPER_AND_LOWER)),
    ]
    pairs = sample_vertex_pairs(graph, num_pairs, seed=81, min_hops=2)
    rows: List[Row] = []
    for label, engine in engines:
        agg = run_query_workload(engine.best_cost, pairs)
        rows.append({
            "engine": label,
            "act/query": round(agg.mean_activations, 1),
            "act%": _pct(agg.mean_activation_fraction(graph.num_vertices)),
            "index-only%": _pct(agg.answered_by_index / agg.total),
            "mean_ms": _ms(agg.mean_elapsed),
        })
    return rows


# ---------------------------------------------------------------------------
# E17 (extension) — epoch-guarded result cache on skewed query workloads
# ---------------------------------------------------------------------------

def run_e17_cache(
    num_queries: int = 300,
    updates_per_round: int = 20,
    skew: float = 1.5,
) -> List[Row]:
    """Serving-layer cache: hot-pair hit rates between update rounds.

    A Zipf-skewed query stream re-asks popular pairs; between update rounds
    the epoch is stable so repeats hit the cache, and every update round
    implicitly invalidates (the epoch moves).  Rows sweep the query skew.
    """
    from repro.streaming.workload import query_stream

    rows: List[Row] = []
    for skew_value in (0.0, skew, 2 * skew):
        graph = load_dataset("social-pl")
        sg = SGraph(graph=graph,
                    config=SGraphConfig(num_hubs=16, cache_size=256))
        sg.rebuild_indexes()
        pairs = query_stream(graph, num_queries, skew=skew_value, seed=91)
        updates = iter(sliding_window_stream(graph, 10_000, seed=92))
        start = time.perf_counter()
        for i, (s, t) in enumerate(pairs):
            if i and i % updates_per_round == 0:
                for _ in range(5):
                    sg.apply_update(next(updates))
            sg.distance(s, t)
        elapsed = time.perf_counter() - start
        cache = sg.cache
        assert cache is not None
        row: Row = {
            "query_skew": skew_value,
            "queries": num_queries,
            "total_ms": _ms(elapsed),
        }
        row.update(cache.stats_row())
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E18 (extension) — delta-proportional snapshot + publish latency
# ---------------------------------------------------------------------------

def run_e18_publish(
    scales: Sequence[int] = (12, 15),
    edge_factor: int = 8,
    deltas: Sequence[int] = (1, 10, 100, 1000),
    publishes_per_delta: int = 3,
    seed: int = 18,
) -> List[Row]:
    """Snapshot+publish latency as a function of churn delta.

    Claim reproduced: with delta-versioned storage the cost of publishing a
    queryable version tracks the number of updates since the last publish,
    not |V|+|E| — the same per-delta latency shows up at both R-MAT scales
    (~8x apart in size) while the initial full-copy publish grows with the
    graph.  ``publish_ms`` is the best of ``publishes_per_delta`` rounds
    (each round applies ``delta`` random edge insertions, then publishes).
    """
    rows: List[Row] = []
    for scale in scales:
        graph = rmat_graph(scale, edge_factor, seed=seed,
                           weight_range=(1.0, 4.0))
        sg = SGraph(graph=graph,
                    config=SGraphConfig(num_hubs=8, queries=("distance",)))
        sg.rebuild_indexes()
        store = VersionedStore(sg, capacity=4)
        rng = random.Random(seed)
        verts = list(graph.vertices())
        start = time.perf_counter()
        store.publish()
        first_publish = time.perf_counter() - start
        for delta in deltas:
            best = math.inf
            for _rep in range(publishes_per_delta):
                for _ in range(delta):
                    sg.add_edge(rng.choice(verts), rng.choice(verts),
                                rng.uniform(1.0, 4.0))
                start = time.perf_counter()
                store.publish()
                best = min(best, time.perf_counter() - start)
            rows.append({
                "scale": scale,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "delta": delta,
                "publish_ms": _ms(best),
                "full_publish_ms": _ms(first_publish),
            })
    return rows


# ---------------------------------------------------------------------------
# E19 (extension) — dict vs dense serving plane
# ---------------------------------------------------------------------------

def run_e19_backend(num_pairs: int = 32) -> List[Row]:
    """Pairwise-query latency of the dict plane vs the dense plane.

    Same frozen state, same pruned bidirectional algorithm, same answers
    (the ``match`` column verifies value parity pair by pair) — the only
    difference is the serving representation: dict-of-dict adjacency and
    dict hub tables vs CSR arrays and numpy hub rows with flat search
    state.  The dense rows should dominate on both the R-MAT-style and
    grid stand-ins; ``benchmarks/bench_e19_backend.py`` asserts it.
    """
    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        wl = build_workload(dataset, num_pairs=num_pairs,
                            hub_strategy=_strategy_for(dataset))
        dict_engine = PairwiseEngine(wl.graph, index=wl.index,
                                     policy=PruningPolicy.UPPER_AND_LOWER)
        dense_engine = _dense_engine_for(wl, PruningPolicy.UPPER_AND_LOWER)
        match = all(
            dict_engine.best_cost(s, t)[0] == dense_engine.best_cost(s, t)[0]
            for s, t in wl.pairs
        )
        for label, engine in (("dict", dict_engine), ("dense", dense_engine)):
            agg = run_query_workload(engine.best_cost, wl.pairs)
            rows.append({
                "dataset": dataset,
                "backend": label,
                "median_ms": _ms(agg.p(0.5)),
                "mean_ms": _ms(agg.mean_elapsed),
                "p99_ms": _ms(agg.p(0.99)),
                "act/query": round(agg.mean_activations, 1),
                "index-only%": _pct(agg.answered_by_index / agg.total),
                "match": match,
            })
    return rows


# ---------------------------------------------------------------------------
# E20 (extension) — batched one-to-many: dict vs dense serving plane
# ---------------------------------------------------------------------------

def run_e20_many_backend(
    target_counts: Sequence[int] = (4, 16, 64),
    repeats: int = 5,
) -> List[Row]:
    """One-to-many latency of the dict plane vs the dense plane.

    The E14 workload (one source, growing target set, shared pruned
    search) replayed on both serving representations of the same frozen
    state.  The dense path reuses one flat ``g`` array across the batch
    and vectorizes the per-target bound rows; it is a transliteration of
    the dict reference, so the ``match`` column checks value parity and
    ``act=`` checks that both planes activate exactly the same number of
    vertices — any dense win is pure representation, not extra pruning.
    The gap should widen with the target count (the per-target bound rows
    amortize one numpy pass each, while the dict path probes hub dicts
    per remaining target on every pop); ``benchmarks/
    bench_e20_many_backend.py`` asserts dense wins from 16 targets up.
    """
    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        wl = build_workload(dataset, num_pairs=80,
                            hub_strategy=_strategy_for(dataset))
        dict_engine = PairwiseEngine(wl.graph, index=wl.index,
                                     policy=PruningPolicy.UPPER_AND_LOWER)
        dense_engine = _dense_engine_for(wl, PruningPolicy.UPPER_AND_LOWER)
        source = wl.pairs[0][0]
        all_targets = [t for _s, t in wl.pairs]
        for count in target_counts:
            targets = all_targets[:count]
            per_backend = {}
            for label, engine in (("dict", dict_engine),
                                  ("dense", dense_engine)):
                timings = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    values, stats = engine.one_to_many(source, targets)
                    timings.append(time.perf_counter() - start)
                timings.sort()
                per_backend[label] = (values, stats,
                                      timings[len(timings) // 2])
            d_values, d_stats, d_median = per_backend["dict"]
            n_values, n_stats, n_median = per_backend["dense"]
            match = d_values == n_values
            for label in ("dict", "dense"):
                values, stats, median = per_backend[label]
                rows.append({
                    "dataset": dataset,
                    "targets": count,
                    "backend": label,
                    "median_ms": _ms(median),
                    "activations": stats.activations,
                    "act=": d_stats.activations == n_stats.activations,
                    "index-only": stats.answered_by_index,
                    "match": match,
                })
    return rows


# ---------------------------------------------------------------------------
# E21 (extension) — multiprocess shm serving: scaling + attach latency
# ---------------------------------------------------------------------------

def run_e21_shm_serving(
    worker_counts: Optional[Sequence[int]] = None,
    num_pairs: int = 192,
    ingest_rounds: int = 3,
    updates_per_round: int = 20,
    attach_scales: Sequence[float] = (0.25, 0.5, 1.0),
) -> List[Row]:
    """Throughput scaling of the shm worker pool, with concurrent ingest.

    Per dataset: a single-process baseline answers the full query schedule
    against published views (dense plane, same ``_search_dense`` hot path)
    while ingesting between rounds; then the identical schedule fans out
    over a :class:`~repro.serving.pool.ServeSession` with 1/2/4 reader
    processes attached to the shm-exported planes.  An untimed parity pass
    at the final epoch checks every pool answer — value AND the six stats
    counters — against a dict-free reference engine over the same frozen
    state, and the ``leaked`` column counts segments left in ``/dev/shm``
    after teardown (must be 0).

    Speedup > 1 requires actual cores; on a single-core box the pool pays
    IPC for no parallelism and the scaling rows document that honestly
    (``benchmarks/bench_e21_shm_serving.py`` gates its ≥2.5× assertion on
    ``len(os.sched_getaffinity(0)) >= 4``).  ``REPRO_E21_WORKERS`` (a
    comma list) overrides the worker counts — CI smoke uses ``1,2``.

    The attach rows measure the handoff cost model: attaching a plane is
    O(#buffers) — map + manifest parse + a few ``np.frombuffer`` views —
    so the latency must stay flat as ``load_scaled`` grows the plane.
    """
    from repro.serving import ShmPlane, leaked_segments, shm_available

    if not shm_available():  # pragma: no cover - exotic platforms only
        return [{"dataset": "-", "workers": 0, "mode": "unavailable"}]
    if worker_counts is None:
        env = os.environ.get("REPRO_E21_WORKERS", "")
        parsed = tuple(int(x) for x in env.split(",") if x.strip())
        worker_counts = parsed or (1, 2, 4)

    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        pairs = [tuple(p) for p in build_workload(
            dataset, num_pairs=num_pairs,
            hub_strategy=_strategy_for(dataset),
        ).pairs]
        batches = [pairs[i::ingest_rounds] for i in range(ingest_rounds)]
        plan_rng = random.Random(29)
        verts = sorted(load_dataset(dataset).vertices())
        plan = [
            [(plan_rng.choice(verts), plan_rng.choice(verts),
              plan_rng.uniform(0.5, 2.0))
             for _ in range(updates_per_round)]
            for _ in range(ingest_rounds)
        ]

        def fresh_sgraph() -> SGraph:
            return SGraph(graph=load_dataset(dataset), config=SGraphConfig(
                num_hubs=16, hub_strategy=_strategy_for(dataset),
                queries=("distance",),
            ))

        # -- single-process baseline (same dense search, no pool) --------
        sg = fresh_sgraph()
        store = VersionedStore(sg)
        store.publish()
        start = time.perf_counter()
        for round_no in range(ingest_rounds):
            engine = store.latest().engine("distance")
            for s, t in batches[round_no]:
                engine.best_cost(s, t)
            for u, v, w in plan[round_no]:
                if u != v:
                    sg.add_edge(u, v, w)
            store.publish()
        base_elapsed = time.perf_counter() - start
        rows.append({
            "dataset": dataset, "workers": 0, "mode": "single-process",
            "queries": num_pairs, "elapsed_s": round(base_elapsed, 3),
            "qps": round(num_pairs / base_elapsed, 1), "speedup": 1.0,
            "parity": "-", "leaked": 0,
        })

        # -- shm worker pool at each worker count -------------------------
        for workers in worker_counts:
            sg = fresh_sgraph()
            session = sg.serve(workers=workers)
            prefix = session.prefix
            try:
                start = time.perf_counter()
                for round_no in range(ingest_rounds):
                    session.map_distance(batches[round_no])
                    for u, v, w in plan[round_no]:
                        if u != v:
                            sg.add_edge(u, v, w)
                    session.publish()
                elapsed = time.perf_counter() - start

                # untimed parity pass at the final epoch
                final = session.store.latest()
                reference = PairwiseEngine(
                    final.snapshot, index=final.engine("distance").index,
                    policy=PruningPolicy.UPPER_AND_LOWER,
                )
                sample = pairs[:48]
                matches = 0
                for (s, t), (value, stats, epoch) in zip(
                        sample, session.map_distance(sample)):
                    ref_value, ref_stats = reference.best_cost(s, t)
                    matches += (
                        value == ref_value and epoch == final.epoch
                        and stats.activations == ref_stats.activations
                        and stats.pushes == ref_stats.pushes
                        and stats.relaxations == ref_stats.relaxations
                        and (stats.pruned_by_upper_bound
                             == ref_stats.pruned_by_upper_bound)
                        and (stats.pruned_by_lower_bound
                             == ref_stats.pruned_by_lower_bound)
                        and (stats.answered_by_index
                             == ref_stats.answered_by_index)
                    )
            finally:
                session.close()
            rows.append({
                "dataset": dataset, "workers": workers, "mode": "shm-pool",
                "queries": num_pairs, "elapsed_s": round(elapsed, 3),
                "qps": round(num_pairs / elapsed, 1),
                "speedup": round(base_elapsed / elapsed, 2),
                "parity": f"{matches}/{len(sample)}",
                "leaked": len(leaked_segments(prefix)),
            })

    # -- attach latency vs plane size: O(#buffers), not O(V+E) -----------
    for scale in attach_scales:
        g = load_scaled("social-pl", scale)
        sg = SGraph(graph=g, config=SGraphConfig(
            num_hubs=16, queries=("distance",),
        ))
        store = VersionedStore(sg)
        view = store.publish()
        plane = view.dense_plane("distance")
        name = f"rpe21-{os.getpid():x}-{int(scale * 100)}"
        exported = ShmPlane.export(plane, name, epoch=view.epoch)
        try:
            timings = []
            for _ in range(5):
                t0 = time.perf_counter()
                handle = ShmPlane.attach(name)
                timings.append(time.perf_counter() - t0)
                handle.close()
            timings.sort()
            rows.append({
                "dataset": "social-pl", "workers": 0, "mode": "attach",
                "scale": scale, "n": g.num_vertices,
                "plane_mb": round(exported.nbytes / 2 ** 20, 2),
                "attach_ms": _ms(timings[len(timings) // 2]),
            })
        finally:
            exported.close()
            exported.unlink()
    return rows


# ---------------------------------------------------------------------------
# E22 (extension) — TCP plane transport: loopback overhead + fetch-on-publish
# ---------------------------------------------------------------------------

def run_e22_net_serving(
    worker_counts: Optional[Sequence[int]] = None,
    num_pairs: int = 128,
    ingest_rounds: int = 3,
    updates_per_round: int = 20,
) -> List[Row]:
    """The cost of crossing a socket instead of mapping a segment.

    Per dataset: the identical query/ingest/publish schedule runs over a
    shm-transport pool and a loopback TCP-transport pool; the ``overhead``
    column is the TCP/shm elapsed ratio (both pools run the same
    ``_search_dense`` hot path on locally held planes, so the gap is pure
    transport: fetch-on-publish payload shipping plus the per-query
    control-message-free round-robin — queries themselves never touch the
    socket).  An untimed parity pass at the final epoch checks every TCP
    answer — value AND the six stats counters — against a dict-free
    reference engine; ``fetches`` audits the server's per-reader fetch
    counters (each plane must cross the socket exactly once per reader).

    The visibility rows measure the fetch-on-publish handoff itself: an
    attached remote :class:`~repro.serving.net.NetReader` times
    ``refresh()`` — generation poll, acquire, payload fetch, digest
    verify, decode — right after each publish.  That is the full
    publish→remote-visibility latency; planes already cached re-acquire
    with zero payload bytes.  ``REPRO_E22_WORKERS`` (a comma list)
    overrides the worker counts — CI smoke uses ``1,2``.
    """
    from repro.serving import leaked_segments, shm_available
    from repro.serving.net import NetReader, net_available

    if not net_available():  # pragma: no cover - socketless sandboxes only
        return [{"dataset": "-", "workers": 0, "mode": "unavailable"}]
    if worker_counts is None:
        env = os.environ.get("REPRO_E22_WORKERS", "")
        parsed = tuple(int(x) for x in env.split(",") if x.strip())
        worker_counts = parsed or (2,)

    rows: List[Row] = []
    for dataset in ("social-pl", "road-grid"):
        pairs = [tuple(p) for p in build_workload(
            dataset, num_pairs=num_pairs,
            hub_strategy=_strategy_for(dataset),
        ).pairs]
        batches = [pairs[i::ingest_rounds] for i in range(ingest_rounds)]
        plan_rng = random.Random(31)
        verts = sorted(load_dataset(dataset).vertices())
        plan = [
            [(plan_rng.choice(verts), plan_rng.choice(verts),
              plan_rng.uniform(0.5, 2.0))
             for _ in range(updates_per_round)]
            for _ in range(ingest_rounds)
        ]

        def fresh_sgraph() -> SGraph:
            return SGraph(graph=load_dataset(dataset), config=SGraphConfig(
                num_hubs=16, hub_strategy=_strategy_for(dataset),
                queries=("distance",),
            ))

        for workers in worker_counts:
            elapsed_by_transport: Dict[str, float] = {}
            transports = (["shm"] if shm_available() else []) + ["tcp"]
            for transport in transports:
                sg = fresh_sgraph()
                session = sg.serve(workers=workers, transport=transport)
                prefix = session.prefix
                try:
                    start = time.perf_counter()
                    for round_no in range(ingest_rounds):
                        session.map_distance(batches[round_no])
                        for u, v, w in plan[round_no]:
                            if u != v:
                                sg.add_edge(u, v, w)
                        session.publish()
                    elapsed = time.perf_counter() - start
                    elapsed_by_transport[transport] = elapsed

                    # untimed parity pass at the final epoch
                    final = session.store.latest()
                    reference = PairwiseEngine(
                        final.snapshot, index=final.engine("distance").index,
                        policy=PruningPolicy.UPPER_AND_LOWER,
                    )
                    sample = pairs[:48]
                    matches = 0
                    for (s, t), (value, stats, epoch) in zip(
                            sample, session.map_distance(sample)):
                        ref_value, ref_stats = reference.best_cost(s, t)
                        matches += (
                            value == ref_value and epoch == final.epoch
                            and stats.activations == ref_stats.activations
                            and stats.pushes == ref_stats.pushes
                            and stats.relaxations == ref_stats.relaxations
                            and (stats.pruned_by_upper_bound
                                 == ref_stats.pruned_by_upper_bound)
                            and (stats.pruned_by_lower_bound
                                 == ref_stats.pruned_by_lower_bound)
                            and (stats.answered_by_index
                                 == ref_stats.answered_by_index)
                        )
                    fetches = "-"
                    if transport == "tcp":
                        counts = session.transport.server.fetch_counts()
                        per_plane = [
                            n for per_digest in counts.values()
                            for n in per_digest.values()
                        ]
                        fetches = (f"max {max(per_plane)}/plane"
                                   if per_plane else "none")
                finally:
                    session.close()
                shm_elapsed = elapsed_by_transport.get("shm")
                rows.append({
                    "dataset": dataset, "workers": workers,
                    "mode": f"{transport}-pool", "queries": num_pairs,
                    "elapsed_s": round(elapsed, 3),
                    "qps": round(num_pairs / elapsed, 1),
                    "overhead": (round(elapsed / shm_elapsed, 2)
                                 if shm_elapsed else "-"),
                    "parity": f"{matches}/{len(sample)}",
                    "fetches": fetches,
                    "leaked": len(leaked_segments(prefix)),
                })

    # -- publish → remote-visibility latency (fetch-on-publish cost) -----
    sg = SGraph(graph=load_dataset("social-pl"), config=SGraphConfig(
        num_hubs=16, hub_strategy=_strategy_for("social-pl"),
        queries=("distance",),
    ))
    mut_rng = random.Random(37)
    verts = sorted(sg.graph.vertices())
    session = sg.serve(workers=1, transport="tcp")
    try:
        reader = NetReader(session.transport.address)
        try:
            reader.refresh()  # adopt (and fetch) the first epoch untimed
            cold, warm = [], []
            for _ in range(4):
                u, v = mut_rng.sample(verts, 2)
                sg.add_edge(u, v, mut_rng.uniform(0.5, 2.0))
                session.publish()
                t0 = time.perf_counter()
                reader.refresh()  # poll + acquire + fetch + verify + decode
                cold.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                reader.refresh()  # same generation: one poll, no payload
                warm.append(time.perf_counter() - t0)
            plane = session.store.latest().dense_plane("distance")
            from repro.serving.codec import encoded_size

            rows.append({
                "dataset": "social-pl", "workers": 1, "mode": "visibility",
                "plane_mb": round(encoded_size(plane) / 2 ** 20, 2),
                "fetch_refresh_ms": _ms(sorted(cold)[len(cold) // 2]),
                "cached_poll_ms": _ms(sorted(warm)[len(warm) // 2]),
            })
        finally:
            reader.close()
    finally:
        session.close()
    return rows


# ---------------------------------------------------------------------------
# E23 (extension) — delta-encoded plane sync: O(Δ) epoch visibility
# ---------------------------------------------------------------------------

def _slack_edges(plane, edges):
    """Edges on no hub's shortest-path tree.

    ``(u, v, w)`` is slack when every hub ``h`` has
    ``|d(h,u) - d(h,v)| < w``: the edge is strictly longer than the
    detour both ways, so *increasing* its weight cannot change any hub
    distance — the F table stays bit-identical and only the CSR weights
    buffer churns.  This is the evolving-graph common case (most weight
    updates land off the index's shortest-path trees) and the byte-local
    churn the chunk-addressed delta is built for.
    """
    import numpy as np

    F, _B = plane.tables._stacked()
    dense = plane.csr.dense_map
    out = []
    for u, v, w in edges:
        if np.all(np.abs(F[:, dense[u]] - F[:, dense[v]]) < w - 1e-9):
            out.append((u, v, w))
    return out


def run_e23_delta_sync(
    epochs: Optional[int] = None,
    churn_fraction: float = 0.01,
) -> List[Row]:
    """Bytes-per-epoch and visibility latency of delta plane sync.

    Two churn regimes, each over a ``delta=True`` TCP session with one
    delta-fetching and one full-fetching :class:`NetReader` attached:

    * ``local`` (road-grid) — per epoch, ~1% of edges inside one
      contiguous vertex-id window are re-weighted *upward*, restricted to
      slack edges (see :func:`_slack_edges`) so the hub table is provably
      unchanged and the churn is byte-local in the CSR weights buffer.
      This is the O(Δ) claim the delta codec makes: the per-epoch
      ``ratio`` column (delta frame bytes / full encoding bytes) must
      stay well under 0.10 — the bench asserts it.
    * ``scattered`` (social-pl) — ~1% of edges anywhere are re-weighted
      to fresh values.  Distance changes ripple through the hub table
      and dirty chunks everywhere; the ratio is reported (not asserted)
      as the adversarial bound on what delta sync can save.

    Hubs are degree-selected in both regimes so weight-only churn cannot
    flip the hub set between publishes (a hub swap rewrites F wholesale —
    that case is exactly what the full-frame fallback is for).  The
    ``summary`` row carries the reader's cumulative transfer counters and
    an untimed parity pass at the final epoch: every delta-composed
    answer must equal the in-process view's (the frame compose is
    digest-verified, so a mismatch would have raised long before).  The
    ``evict-fallback`` rows force ``cache_planes=1`` and two publishes
    per refresh, so the reader's base digest is always evicted server
    side: every fetch must degrade to a full frame, never an error.
    ``REPRO_E23_EPOCHS`` overrides the per-regime epoch count — CI smoke
    uses 2.
    """
    from repro.serving.codec import encoded_size
    from repro.serving.net import NetReader, net_available

    if not net_available():  # pragma: no cover - socketless sandboxes only
        return [{"dataset": "-", "mode": "unavailable"}]
    if epochs is None:
        env = os.environ.get("REPRO_E23_EPOCHS", "")
        epochs = int(env) if env.strip() else 4

    rows: List[Row] = []
    for dataset, regime in (("road-grid", "local"),
                            ("social-pl", "scattered")):
        sg = SGraph(graph=load_dataset(dataset), config=SGraphConfig(
            num_hubs=16, hub_strategy="degree", queries=("distance",),
        ))
        g = sg.graph
        m = g.num_edges
        churn_n = max(1, int(m * churn_fraction))
        rng = random.Random(41)
        verts = sorted(g.vertices())
        session = sg.serve(workers=1, transport="tcp", delta=True)
        try:
            delta_reader = NetReader(session.transport.address, delta=True)
            full_reader = NetReader(session.transport.address)
            try:
                delta_reader.refresh()  # bootstrap fetches, untimed
                full_reader.refresh()
                for epoch_no in range(epochs):
                    edges = sorted(g.edges())
                    if regime == "local":
                        plane = session.store.latest().dense_plane(
                            "distance")
                        span = max(2, len(verts) // 12)
                        lo = rng.randrange(len(verts) - span)
                        window = set(verts[lo:lo + span])
                        pool = _slack_edges(plane, [
                            e for e in edges
                            if e[0] in window and e[1] in window
                        ])
                        chosen = pool[:churn_n]
                        for u, v, w in chosen:
                            sg.add_edge(u, v, w + rng.uniform(0.05, 0.3))
                    else:
                        chosen = rng.sample(edges, churn_n)
                        for u, v, _w in chosen:
                            sg.add_edge(u, v, rng.uniform(0.5, 3.0))
                    before = delta_reader.transfer_stats()
                    view = session.publish()
                    full_nbytes = encoded_size(
                        view.dense_plane("distance"), epoch=view.epoch)
                    t0 = time.perf_counter()
                    delta_reader.refresh()
                    delta_s = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    full_reader.refresh()
                    full_s = time.perf_counter() - t0
                    after = delta_reader.transfer_stats()
                    moved = (after["bytes_received"]
                             - before["bytes_received"])
                    rows.append({
                        "dataset": dataset, "mode": f"{regime}-churn",
                        "epoch": epoch_no + 1,
                        "churn_pct": round(100.0 * len(chosen) / m, 2),
                        "full_kb": round(full_nbytes / 1024, 1),
                        "delta_kb": round(moved / 1024, 1),
                        "ratio": round(moved / full_nbytes, 3),
                        "delta_refresh_ms": _ms(delta_s),
                        "full_refresh_ms": _ms(full_s),
                    })
                # untimed parity pass at the final epoch
                final = session.store.latest()
                sample = [tuple(rng.sample(verts, 2)) for _ in range(32)]
                matches = sum(
                    delta_reader.distance(s, t)[0]
                    == final.distance(s, t).value
                    for s, t in sample
                )
                transfer = delta_reader.transfer_stats()
                rows.append({
                    "dataset": dataset, "mode": "summary",
                    "epoch": epochs,
                    "delta_fetches": transfer["delta_fetches"],
                    "full_fetches": transfer["full_fetches"],
                    "bytes_ratio": round(
                        transfer["bytes_received"]
                        / transfer["bytes_full"], 3),
                    "parity": f"{matches}/{len(sample)}",
                })
            finally:
                delta_reader.close()
                full_reader.close()
        finally:
            session.close()

    # -- eviction fallback: the base digest ages out of the history ------
    sg = SGraph(graph=load_dataset("uniform-er"), config=SGraphConfig(
        num_hubs=8, hub_strategy="degree", queries=("distance",),
    ))
    g = sg.graph
    rng = random.Random(43)
    session = sg.serve(workers=1, transport="tcp", delta=True,
                       cache_planes=1)
    try:
        reader = NetReader(session.transport.address, delta=True)
        try:
            reader.refresh()
            edges = sorted(g.edges())
            for _ in range(3):
                for u, v, _w in rng.sample(edges, 10):
                    sg.add_edge(u, v, rng.uniform(0.5, 3.0))
                session.publish()  # evicts the reader's base...
                for u, v, _w in rng.sample(edges, 10):
                    sg.add_edge(u, v, rng.uniform(0.5, 3.0))
                session.publish()  # ...twice over
                reader.refresh()
            transfer = reader.transfer_stats()
            rows.append({
                "dataset": "uniform-er", "mode": "evict-fallback",
                "epoch": 6,
                "delta_fetches": transfer["delta_fetches"],
                "full_fetches": transfer["full_fetches"],
                "bytes_ratio": round(transfer["bytes_received"]
                                     / transfer["bytes_full"], 3),
            })
        finally:
            reader.close()
    finally:
        session.close()
    return rows


def _e24_stats_key(stats) -> tuple:
    """The six pre-workspace counters — the bit-identity comparison basis.

    Workspace counters are excluded on purpose: the reference (cold) path
    reports zero hits by construction, and the parity claim is about the
    *search*, which must not observe the state regime it runs in.
    """
    return (
        stats.activations, stats.pushes, stats.relaxations,
        stats.pruned_by_lower_bound, stats.pruned_by_upper_bound,
        stats.answered_by_index,
    )


def run_e24_workspace(
    side: Optional[int] = None, queries: Optional[int] = None
) -> List[Row]:
    """Warm (reused-workspace) vs cold (fresh-state) dense query latency.

    One ≥100k-vertex plane (a ``side``×``side`` grid, 317² = 100,489 by
    default) served by two engines over the *same* CSR and hub tables: the
    warm engine reuses one :class:`SearchWorkspace` across queries
    (sparse-reset, O(touched) setup), the cold engine is the pre-workspace
    reference — fresh O(V) state every call (``reuse_workspace=False``).

    Workloads:

    * ``pairwise-pruned`` — endpoints within two cells of a hub, so the
      index bounds are tight and the search settles after touching a few
      dozen ids.  Setup dominated these queries before; the bench asserts
      the warm median is at least 2x below the cold one.
    * ``pairwise-unpruned`` — random pairs up to 16 cells apart under
      ``policy="none"``: the search does real traversal work, so the reuse
      win shrinks toward 1x.  Reported unasserted — it documents where the
      optimization stops mattering.
    * ``batched`` — ``one_to_many`` from a near-hub source to 16 near-hub
      targets, same warm/cold split.

    The ``parity`` rows re-run every workload under all three policies on
    both engines and compare values AND stats (:func:`_e24_stats_key`);
    the bench asserts every comparison matches — reuse can never trade
    correctness for latency.  The ``workspace`` row carries the warm
    engine's lifetime counters: exactly one allocation regardless of how
    many queries ran.

    ``REPRO_E24_SIDE`` / ``REPRO_E24_QUERIES`` override the plane side and
    per-workload query count.
    """
    from repro.graph.generators import grid_graph

    if side is None:
        env = os.environ.get("REPRO_E24_SIDE", "")
        side = int(env) if env.strip() else 317
    if queries is None:
        env = os.environ.get("REPRO_E24_QUERIES", "")
        queries = int(env) if env.strip() else 32

    g = grid_graph(side, side, seed=13, weight_range=(1.0, 10.0))
    sg = SGraph(graph=g, config=SGraphConfig(
        num_hubs=4, queries=("distance",), backend="dense",
    ))
    view = VersionedStore(sg).publish()
    plane = view.dense_plane()
    index = view.engine("distance").index
    graph = index.graph
    rng = random.Random(24)

    def near(hub: int, radius: int) -> int:
        r, c = divmod(hub, side)
        rr = min(max(r + rng.randrange(-radius, radius + 1), 0), side - 1)
        cc = min(max(c + rng.randrange(-radius, radius + 1), 0), side - 1)
        return rr * side + cc

    # Keep only pairs the index *prunes* (small traversal) rather than
    # *answers* (zero traversal): index-answered queries return before the
    # workspace is acquired, so they carry no setup cost in either regime.
    probe = PairwiseEngine(graph, index=index, policy="upper+lower",
                           dense=plane)
    pruned_pairs: List[Tuple[int, int]] = []
    while len(pruned_pairs) < queries:
        hub = rng.choice(index.hubs)
        s, t = near(hub, 2), near(hub, 2)
        if s == t:
            continue
        _probe_value, probe_stats = probe.best_cost(s, t)
        if probe_stats.touched_reset > 0:
            pruned_pairs.append((s, t))
    unpruned_pairs: List[Tuple[int, int]] = []
    while len(unpruned_pairs) < queries:
        r, c = rng.randrange(side - 16), rng.randrange(side - 16)
        dr, dc = rng.randrange(16), rng.randrange(16)
        if dr or dc:
            unpruned_pairs.append((r * side + c, (r + dr) * side + (c + dc)))
    batch_source = near(index.hubs[0], 2)
    batch_targets = [near(rng.choice(index.hubs), 2) for _ in range(16)]

    def engines(policy: str) -> Tuple[PairwiseEngine, PairwiseEngine]:
        warm = PairwiseEngine(graph, index=index, policy=policy, dense=plane)
        cold = PairwiseEngine(graph, index=index, policy=policy, dense=plane,
                              reuse_workspace=False)
        return warm, cold

    def median_ms(run: Callable[[], object], reps: int) -> Tuple[float, object]:
        samples = []
        last = None
        for _ in range(reps):
            start = time.perf_counter()
            last = run()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return 1e3 * samples[len(samples) // 2], last

    rows: List[Row] = []
    vertices = plane.csr.num_vertices

    def sweep(mode: str, policy: str, pairs: List[Tuple[int, int]]) -> None:
        warm, cold = engines(policy)
        for s, t in pairs[: max(1, len(pairs) // 4)]:
            warm.best_cost(s, t)  # allocate + settle the workspace
        touched: List[int] = []
        warm_samples = []
        cold_samples = []
        for s, t in pairs:
            start = time.perf_counter()
            _value, stats = warm.best_cost(s, t)
            warm_samples.append(time.perf_counter() - start)
            touched.append(stats.touched_reset)
        for s, t in pairs:
            start = time.perf_counter()
            cold.best_cost(s, t)
            cold_samples.append(time.perf_counter() - start)
        warm_samples.sort()
        cold_samples.sort()
        touched.sort()
        warm_ms = 1e3 * warm_samples[len(warm_samples) // 2]
        cold_ms = 1e3 * cold_samples[len(cold_samples) // 2]
        rows.append({
            "mode": mode, "policy": policy, "vertices": vertices,
            "queries": len(pairs),
            "warm_ms": round(warm_ms, 4), "cold_ms": round(cold_ms, 4),
            "ratio": round(cold_ms / warm_ms, 2) if warm_ms else float("inf"),
            "touched_med": touched[len(touched) // 2],
        })

    sweep("pairwise-pruned", "upper+lower", pruned_pairs)
    sweep("pairwise-unpruned", "none", unpruned_pairs)

    # Batched one-to-many, warm vs cold.
    warm, cold = engines("upper+lower")
    warm.one_to_many(batch_source, batch_targets)
    warm_ms, _ = median_ms(
        lambda: warm.one_to_many(batch_source, batch_targets), 8
    )
    cold_ms, _ = median_ms(
        lambda: cold.one_to_many(batch_source, batch_targets), 8
    )
    rows.append({
        "mode": "batched", "policy": "upper+lower", "vertices": vertices,
        "queries": 8,
        "warm_ms": round(warm_ms, 4), "cold_ms": round(cold_ms, 4),
        "ratio": round(cold_ms / warm_ms, 2) if warm_ms else float("inf"),
        "touched_med": "-",
    })

    # Bit-identity parity sweep: warm vs the pre-workspace reference path,
    # every policy, values AND stats, pairwise and batched.
    for policy in ("none", "upper-only", "upper+lower"):
        warm, cold = engines(policy)
        matched = total = 0
        for s, t in pruned_pairs + unpruned_pairs:
            wv, ws_ = warm.best_cost(s, t)
            cv, cs = cold.best_cost(s, t)
            total += 1
            if wv == cv and _e24_stats_key(ws_) == _e24_stats_key(cs):
                matched += 1
        wv, ws_ = warm.one_to_many(batch_source, batch_targets)
        cv, cs = cold.one_to_many(batch_source, batch_targets)
        total += 1
        if wv == cv and _e24_stats_key(ws_) == _e24_stats_key(cs):
            matched += 1
        ws_counters = warm.workspace_stats()
        rows.append({
            "mode": "parity", "policy": policy, "vertices": vertices,
            "queries": total, "parity": f"{matched}/{total}",
            "workspace_allocs": ws_counters["workspace_allocs"],
            "workspace_hits": ws_counters["workspace_hits"],
        })
    return rows


def run_e25_fault_tolerance(
    epochs: Optional[int] = None, queries: Optional[int] = None
) -> List[Row]:
    """Serving correctness under deterministic fault injection.

    Two legs, each comparing a disrupted deployment against an untouched
    one on the *same* published planes — so parity is bit-identity
    (values and the :func:`_e24_stats_key` search counters), not
    tolerance:

    * ``churn`` (TCP) — a seeded :class:`FaultPolicy` (two connection
      drops, two mid-frame truncations, two payload corruptions, one
      latency spike) sits on a :class:`FaultProxy` between a retrying
      :class:`NetReader` and the server; a clean reader dials direct.
      Every epoch of a churn workload is answered by both and compared.
      The ``summary`` row carries the faulted reader's counters: each
      disruptive fault costs exactly one retry (``retries ==
      disruptions``), corruptions are caught by the frame digest
      (``corrupt_frames``), drops/truncations surface as peer-closed
      reconnects, and nothing times out or goes stale.
    * ``respawn`` (shm) — a two-worker pool answers a baseline, one
      worker is SIGKILLed, and the same queries are re-asked: lost
      requests are resubmitted around the corpse while the reap
      respawns it, so every answer still matches and the pool is back
      to full strength (``respawns >= 1``, all workers alive).

    Latency columns report the per-query median — the faulted median
    stays near the clean one because only the faulted *connections* pay
    the backoff, not every query.  ``REPRO_E25_EPOCHS`` /
    ``REPRO_E25_QUERIES`` cap the workload for CI smoke runs.
    """
    from repro.serving import shm_available
    from repro.serving.faults import FaultPolicy, FaultProxy
    from repro.serving.net import NetReader, net_available

    if epochs is None:
        env = os.environ.get("REPRO_E25_EPOCHS", "")
        epochs = int(env) if env.strip() else 3
    if queries is None:
        env = os.environ.get("REPRO_E25_QUERIES", "")
        queries = int(env) if env.strip() else 16

    def median_ms(samples: List[float]) -> float:
        samples = sorted(samples)
        return round(1e3 * samples[len(samples) // 2], 3)

    rows: List[Row] = []

    # -- churn through the fault proxy (TCP) -----------------------------
    if net_available():
        sg = SGraph(graph=load_dataset("road-grid"), config=SGraphConfig(
            num_hubs=16, hub_strategy=_strategy_for("road-grid"),
            queries=("distance",),
        ))
        verts = sorted(sg.graph.vertices())
        rng = random.Random(25)
        policy = FaultPolicy(seed=42, drops=2, truncations=2,
                             corruptions=2, delays=1, delay_s=0.05)
        session = sg.serve(workers=1, transport="tcp")
        try:
            server = session.transport.server
            proxy = FaultProxy(server.host, server.port, policy)
            faulted = NetReader(proxy.address, retry=6, backoff=0.01,
                                max_backoff=0.05)
            clean = NetReader(server.address)
            try:
                for epoch_no in range(epochs):
                    if epoch_no:
                        u, v = rng.sample(verts[:50], 2)
                        sg.add_edge(u, v, rng.uniform(0.1, 0.4))
                        session.publish()
                    pairs = [tuple(rng.sample(verts, 2))
                             for _ in range(queries)]
                    matched = 0
                    f_samples: List[float] = []
                    c_samples: List[float] = []
                    for s, t in pairs:
                        start = time.perf_counter()
                        fv, fstats, fepoch = faulted.distance(s, t)
                        f_samples.append(time.perf_counter() - start)
                        start = time.perf_counter()
                        cv, cstats, cepoch = clean.distance(s, t)
                        c_samples.append(time.perf_counter() - start)
                        if (fv == cv and fepoch == cepoch
                                and _e24_stats_key(fstats)
                                == _e24_stats_key(cstats)):
                            matched += 1
                    rows.append({
                        "mode": "churn", "epoch": epoch_no + 1,
                        "queries": queries,
                        "parity": f"{matched}/{queries}",
                        "clean_ms": median_ms(c_samples),
                        "faulted_ms": median_ms(f_samples),
                    })
                transfer = faulted.transfer_stats()
                injected = policy.injected
                rows.append({
                    "mode": "summary", "epoch": epochs,
                    "scheduled": sum(policy.scheduled().values()),
                    "injected": sum(injected.values()),
                    "inj_closed": injected["drop"] + injected["truncate"],
                    "inj_corrupt": injected["corrupt"],
                    "disruptions": policy.disruptions(),
                    "retries": transfer["retries"],
                    "reconnects": transfer["reconnects"],
                    "peer_closed": transfer["peer_closed"],
                    "corrupt_frames": transfer["corrupt_frames"],
                    "deadline_exceeded": transfer["deadline_exceeded"],
                    "stale_serves": transfer["stale_serves"],
                })
            finally:
                faulted.close()
                clean.close()
                proxy.close()
        finally:
            session.close()
    else:  # pragma: no cover - socketless sandboxes only
        rows.append({"mode": "churn-unavailable"})

    # -- worker SIGKILL + respawn (shm) ----------------------------------
    if shm_available():
        sg = SGraph(graph=load_dataset("road-grid"), config=SGraphConfig(
            num_hubs=16, hub_strategy=_strategy_for("road-grid"),
            queries=("distance",),
        ))
        verts = sorted(sg.graph.vertices())
        rng = random.Random(26)
        pairs = [tuple(rng.sample(verts, 2)) for _ in range(queries)]
        with sg.serve(workers=2) as session:
            baseline = [session.distance(s, t) for s, t in pairs]
            session.pool.kill_worker(0)
            matched = 0
            samples: List[float] = []
            for (s, t), want in zip(pairs, baseline):
                start = time.perf_counter()
                value, stats, epoch = session.distance(s, t)
                samples.append(time.perf_counter() - start)
                if (value == want[0] and epoch == want[2]
                        and _e24_stats_key(stats)
                        == _e24_stats_key(want[1])):
                    matched += 1
            rows.append({
                "mode": "respawn", "queries": queries,
                "parity": f"{matched}/{queries}",
                "post_kill_ms": median_ms(samples),
                "respawns": session.pool.respawns,
                "alive": len(session.pool.alive()),
                "workers": session.workers,
                "breaker_open": session.pool.breaker.open,
            })
    else:  # pragma: no cover - no POSIX shm only
        rows.append({"mode": "respawn-unavailable"})
    return rows


# ---------------------------------------------------------------------------

ALL_EXPERIMENTS: Dict[str, Callable[[], List[Row]]] = {
    "E1 datasets": run_e1_datasets,
    "E2 activations": run_e2_activations,
    "E3 latency": run_e3_latency,
    "E4 query types": run_e4_query_types,
    "E5 ingest throughput": run_e5_ingest,
    "E6 maintenance": run_e6_maintenance,
    "E7 hub sensitivity": run_e7_hubs,
    "E8 concurrent load": run_e8_concurrent,
    "E9 crossover": run_e9_crossover,
    "E10 index size": run_e10_memory,
    "E11 bound tightness": run_e11_bound_tightness,
    "E12 approximation": run_e12_tolerance,
    "E13 directed": run_e13_directed,
    "E14 one-to-many": run_e14_one_to_many,
    "E15 adaptive": run_e15_adaptive,
    "E16 reliability": run_e16_reliability,
    "E17 cache": run_e17_cache,
    "E18 publish latency": run_e18_publish,
    "E19 backend": run_e19_backend,
    "E20 many backend": run_e20_many_backend,
    "E21 shm serving": run_e21_shm_serving,
    "E22 net serving": run_e22_net_serving,
    "E23 delta sync": run_e23_delta_sync,
    "E24 workspace reuse": run_e24_workspace,
    "E25 fault tolerance": run_e25_fault_tolerance,
}


def main() -> None:
    from repro.bench.report import print_table

    for title, fn in ALL_EXPERIMENTS.items():
        print_table(fn(), title=f"== {title} ==")


if __name__ == "__main__":
    main()
