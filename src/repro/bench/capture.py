"""Run-wide capture of reproduced experiment tables.

The benchmark modules render each experiment's rows into a table here;
the benchmarks' conftest flushes the buffer into pytest's terminal summary
so the tables survive output capture.  Lives in the installed package (not
in conftest) so there is exactly one buffer regardless of how the modules
are imported.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import format_table

_TABLES: List[str] = []


def record_table(rows, title: str) -> None:
    _TABLES.append(format_table(rows, title=title))


def drain_tables() -> List[str]:
    tables = list(_TABLES)
    _TABLES.clear()
    return tables
