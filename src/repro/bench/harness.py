"""Runners that execute a query workload against an engine and aggregate."""

from __future__ import annotations

import time
from typing import Callable, Sequence, Tuple

from repro.core.stats import QueryStats, StatsAggregate


def run_query_workload(
    query_fn: Callable[[int, int], Tuple[float, QueryStats]],
    pairs: Sequence[Tuple[int, int]],
) -> StatsAggregate:
    """Run ``query_fn`` over every pair, timing each call.

    ``query_fn`` follows the engine convention of returning
    ``(value, QueryStats)``; wrap facade methods with a small lambda that
    unpacks :class:`~repro.core.pairwise.QueryResult`.
    """
    aggregate = StatsAggregate()
    for source, target in pairs:
        start = time.perf_counter()
        _value, stats = query_fn(source, target)
        stats.elapsed = time.perf_counter() - start
        aggregate.add(stats)
    return aggregate


def time_callable(fn: Callable[[], object], repeat: int = 1) -> float:
    """Mean wall-clock seconds of ``fn`` over ``repeat`` runs."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat
