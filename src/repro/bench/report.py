"""Plain-text table rendering for benchmark output.

Every experiment harness prints its result as one of these tables, so the
rows the paper's tables/figures would carry are regenerated as text the
reader can diff across runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict-rows as a fixed-width table.

    Column order follows the first row's key order; missing cells render
    empty.  Values are stringified with ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    parts: List[str] = []
    if title:
        parts.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    parts.append(header)
    parts.append("  ".join("-" * w for w in widths))
    for line in cells:
        parts.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(parts)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    print()
    print(format_table(rows, title=title))


def format_histogram(
    values: Sequence[float],
    bins: int = 10,
    title: str = "",
    width: int = 40,
) -> str:
    """ASCII histogram of a value distribution (activation counts, gaps…)."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if not values:
        return f"{title}\n(no values)" if title else "(no values)"
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for value in values:
        idx = min(bins - 1, int((value - lo) / span * bins))
        counts[idx] += 1
    peak = max(counts)
    lines: List[str] = [title] if title else []
    for i, count in enumerate(counts):
        left = lo + span * i / bins
        right = lo + span * (i + 1) / bins
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"{left:10.2f}..{right:10.2f} | {bar} {count}")
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Iterable[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    xs = list(xs)
    rows = []
    for i, x in enumerate(xs):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)
