"""Workload construction shared by the benchmark modules.

A :class:`QueryWorkload` bundles one dataset proxy, a prepared hub index,
and a deterministic set of query pairs, so every experiment that compares
engines does so over identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.hub_index import HubIndex
from repro.core.semiring import SHORTEST_DISTANCE, PathSemiring
from repro.graph.datasets import load_dataset
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.stats import sample_vertex_pairs


@dataclass
class QueryWorkload:
    """One dataset + index + query-pair bundle."""

    name: str
    graph: DynamicGraph
    index: HubIndex
    pairs: List[Tuple[int, int]]

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


def build_workload(
    dataset: str,
    num_pairs: int = 32,
    num_hubs: int = 16,
    hub_strategy: str = "degree",
    seed: int = 0,
    min_hops: int = 2,
    semiring: PathSemiring = SHORTEST_DISTANCE,
) -> QueryWorkload:
    """Load a dataset proxy, build its hub index, and sample query pairs.

    Pairs are drawn from the largest component with a minimum hop distance,
    so trivially adjacent queries don't flatter any engine.
    """
    graph = load_dataset(dataset)
    index = HubIndex.build(
        graph, num_hubs, strategy=hub_strategy, seed=seed, semiring=semiring
    )
    pairs = sample_vertex_pairs(
        graph, num_pairs, seed=seed + 1, connected_only=True, min_hops=min_hops
    )
    return QueryWorkload(name=dataset, graph=graph, index=index, pairs=pairs)
