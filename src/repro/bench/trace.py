"""Workload traces: record an interleaved update/query workload to a file
and replay it deterministically.

Benchmark reproducibility usually dies at "the workload was generated on
the fly".  A trace pins the exact interleaving: a text file of update and
query events that any SGraph configuration can replay, producing a
:class:`ReplayReport` with per-query answers and aggregate statistics.
Two replays of one trace against equal configurations are bit-identical,
which the tests assert.

Format (one event per line, ``#`` comments allowed)::

    # repro-trace v1
    I <src> <dst> <weight>     edge insert
    D <src> <dst>              edge delete
    Q <kind> <src> <dst>       pairwise query (distance|hops|reachability|bottleneck)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.pairwise import QueryKind
from repro.core.stats import StatsAggregate
from repro.errors import WorkloadError
from repro.streaming.update import EdgeUpdate, UpdateKind

HEADER = "# repro-trace v1"


@dataclass(frozen=True)
class TraceEvent:
    """One trace line: either an update or a query."""

    update: Optional[EdgeUpdate] = None
    query: Optional[Tuple[QueryKind, int, int]] = None

    def __post_init__(self) -> None:
        if (self.update is None) == (self.query is None):
            raise WorkloadError(
                "a trace event is exactly one of update/query"
            )

    @classmethod
    def of_update(cls, update: EdgeUpdate) -> "TraceEvent":
        return cls(update=update)

    @classmethod
    def of_query(cls, kind: QueryKind, source: int, target: int) -> "TraceEvent":
        return cls(query=(kind, source, target))

    @property
    def is_query(self) -> bool:
        return self.query is not None


def write_trace(path: Union[str, Path], events: Iterable[TraceEvent]) -> int:
    """Serialize events; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="ascii") as fh:
        fh.write(HEADER + "\n")
        for event in events:
            if event.update is not None:
                upd = event.update
                if upd.kind is UpdateKind.INSERT:
                    fh.write(f"I {upd.src} {upd.dst} {upd.weight!r}\n")
                else:
                    fh.write(f"D {upd.src} {upd.dst}\n")
            else:
                assert event.query is not None
                kind, source, target = event.query
                fh.write(f"Q {kind.value} {source} {target}\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Parse a trace file, validating the header and every line."""
    path = Path(path)
    with path.open("r", encoding="ascii") as fh:
        first = fh.readline().rstrip("\n")
        if first != HEADER:
            raise WorkloadError(f"{path}: not a repro trace (header {first!r})")
        for lineno, raw in enumerate(fh, start=2):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            tag = parts[0]
            try:
                if tag == "I" and len(parts) == 4:
                    yield TraceEvent.of_update(
                        EdgeUpdate.insert(int(parts[1]), int(parts[2]),
                                          float(parts[3]))
                    )
                elif tag == "D" and len(parts) == 3:
                    yield TraceEvent.of_update(
                        EdgeUpdate.delete(int(parts[1]), int(parts[2]))
                    )
                elif tag == "Q" and len(parts) == 4:
                    yield TraceEvent.of_query(
                        QueryKind.parse(parts[1]), int(parts[2]), int(parts[3])
                    )
                else:
                    raise ValueError("unrecognized event shape")
            except (ValueError, WorkloadError) as exc:
                raise WorkloadError(f"{path}:{lineno}: bad event {line!r}") from exc


def interleave(
    updates: Sequence[EdgeUpdate],
    queries: Sequence[Tuple[QueryKind, int, int]],
    updates_per_query: int,
) -> List[TraceEvent]:
    """Build a trace: one query after every ``updates_per_query`` updates.

    Leftover updates (and then leftover queries) are appended at the end, so
    no event is dropped.
    """
    if updates_per_query < 1:
        raise WorkloadError("updates_per_query must be >= 1")
    events: List[TraceEvent] = []
    query_cursor = 0
    for i, update in enumerate(updates, start=1):
        events.append(TraceEvent.of_update(update))
        if i % updates_per_query == 0 and query_cursor < len(queries):
            events.append(TraceEvent.of_query(*queries[query_cursor]))
            query_cursor += 1
    for kind, source, target in queries[query_cursor:]:
        events.append(TraceEvent.of_query(kind, source, target))
    return events


@dataclass
class ReplayReport:
    """Outcome of replaying a trace against one SGraph."""

    updates_applied: int = 0
    answers: List[float] = field(default_factory=list)
    query_stats: StatsAggregate = field(default_factory=StatsAggregate)

    @property
    def queries_answered(self) -> int:
        return len(self.answers)


def replay_trace(sgraph, events: Iterable[TraceEvent]) -> ReplayReport:
    """Apply every event in order against an :class:`repro.SGraph`."""
    dispatch = {
        QueryKind.DISTANCE: sgraph.distance,
        QueryKind.HOPS: sgraph.hop_distance,
        QueryKind.REACHABILITY: sgraph.reachable,
        QueryKind.BOTTLENECK: sgraph.bottleneck,
    }
    report = ReplayReport()
    for event in events:
        if event.update is not None:
            sgraph.apply_update(event.update)
            report.updates_applied += 1
        else:
            assert event.query is not None
            kind, source, target = event.query
            result = dispatch[kind](source, target)
            report.answers.append(result.value)
            report.query_stats.add(result.stats)
    return report
