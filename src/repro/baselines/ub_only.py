"""The upper-bound-only comparator (Tripoline-style).

This models the class of systems the paper characterizes as "existing
upper-bound-only pruning techniques": a triangle-inequality hub index is
maintained over the evolving graph, but it is used *only* to seed an upper
bound on the query answer — there is no per-vertex lower-bound test.  The
abstract reports this class pruning "about half of the vertex activations".

The engine shares the search routine and the index machinery with SGraph
(policy ``UPPER_ONLY``), so the only difference measured in E2/E3 is the
pruning rule itself — exactly the paper's ablation.
"""

from __future__ import annotations

import time

from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.pairwise import QueryKind, QueryResult
from repro.core.pruning import PruningPolicy
from repro.core.semiring import SHORTEST_DISTANCE, PathSemiring


class UpperBoundOnlyEngine:
    """Evolving-graph pairwise engine with upper-bound-only pruning.

    Implements the :class:`~repro.streaming.ingest.IndexListener` protocol,
    so it can sit next to an SGraph instance behind one
    :class:`~repro.streaming.ingest.IngestEngine` and see the same updates.
    """

    def __init__(
        self,
        graph,
        num_hubs: int = 16,
        hub_strategy: str = "degree",
        seed: int = 0,
        semiring: PathSemiring = SHORTEST_DISTANCE,
    ) -> None:
        self._graph = graph
        self._index = HubIndex.build(
            graph, num_hubs, strategy=hub_strategy, seed=seed, semiring=semiring
        )
        self._engine = PairwiseEngine(
            graph, index=self._index, policy=PruningPolicy.UPPER_ONLY
        )
        self.settled_last_update = 0

    @property
    def index(self) -> HubIndex:
        return self._index

    # -- IndexListener protocol ------------------------------------------------

    def notify_edge_inserted(self, src: int, dst: int, weight: float) -> None:
        self._index.notify_edge_inserted(src, dst, weight)
        self.settled_last_update = self._index.settled_last_update

    def notify_edge_deleted(self, src: int, dst: int, old_weight: float) -> None:
        self._index.notify_edge_deleted(src, dst, old_weight)
        self.settled_last_update = self._index.settled_last_update

    # -- queries ------------------------------------------------------------------

    def distance(self, source: int, target: int) -> QueryResult:
        start = time.perf_counter()
        value, stats = self._engine.best_cost(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.DISTANCE,
            source=source,
            target=target,
            value=value,
            stats=stats,
        )

    def reachable(self, source: int, target: int) -> QueryResult:
        start = time.perf_counter()
        exists, stats = self._engine.feasible(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.REACHABILITY,
            source=source,
            target=target,
            value=1.0 if exists else 0.0,
            stats=stats,
        )
