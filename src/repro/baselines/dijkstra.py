"""Classic index-free search baselines.

These are the reference algorithms every engine is validated against in the
tests, and the "no pruning" end of the activation spectrum in E2/E3:

* :func:`dijkstra_distance` — unidirectional Dijkstra with early
  termination at the target;
* :func:`bidirectional_dijkstra` — the standard meet-in-the-middle variant;
* :func:`bfs_hops` — unweighted shortest path length;
* :func:`full_sssp` — exhaustive single-source distances (what an analytic
  graph engine computes when it cannot stop early).

All of them fill in :class:`~repro.core.stats.QueryStats` so activation
counts compare apples-to-apples with the pruned engines.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional, Tuple

from repro.core.stats import QueryStats
from repro.errors import QueryError
from repro.utils.pqueue import IndexedHeap


def _check_endpoints(graph, source: int, target: Optional[int]) -> None:
    if not graph.has_vertex(source):
        raise QueryError(f"query endpoint {source} is not in the graph")
    if target is not None and not graph.has_vertex(target):
        raise QueryError(f"query endpoint {target} is not in the graph")


def dijkstra_distance(graph, source: int, target: int) -> Tuple[float, QueryStats]:
    """Unidirectional Dijkstra, stopping when the target settles."""
    _check_endpoints(graph, source, target)
    stats = QueryStats()
    if source == target:
        return 0.0, stats
    dist: Dict[int, float] = {source: 0.0}
    settled: set = set()
    heap = IndexedHeap()
    heap.push(source, 0.0)
    while heap:
        v, d = heap.pop()
        settled.add(v)
        stats.activations += 1
        if v == target:
            return d, stats
        for u, w in graph.out_items(v):
            stats.relaxations += 1
            if u in settled:
                continue
            cand = d + w
            if cand < dist.get(u, math.inf):
                dist[u] = cand
                heap.push(u, cand)
                stats.pushes += 1
    return math.inf, stats


def bidirectional_dijkstra(graph, source: int, target: int) -> Tuple[float, QueryStats]:
    """Meet-in-the-middle Dijkstra with the classic termination condition."""
    _check_endpoints(graph, source, target)
    stats = QueryStats()
    if source == target:
        return 0.0, stats
    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    settled_f: set = set()
    settled_b: set = set()
    heap_f = IndexedHeap()
    heap_b = IndexedHeap()
    heap_f.push(source, 0.0)
    heap_b.push(target, 0.0)
    best = math.inf
    while heap_f and heap_b:
        _, top_f = heap_f.peek()
        _, top_b = heap_b.peek()
        if top_f + top_b >= best:
            break
        forward = len(heap_f) <= len(heap_b)
        heap = heap_f if forward else heap_b
        dist = dist_f if forward else dist_b
        other = dist_b if forward else dist_f
        settled = settled_f if forward else settled_b
        v, d = heap.pop()
        settled.add(v)
        stats.activations += 1
        if v in other:
            best = min(best, d + other[v])
        neighbors = graph.out_items(v) if forward else graph.in_items(v)
        for u, w in neighbors:
            stats.relaxations += 1
            if u in settled:
                continue
            cand = d + w
            if cand < dist.get(u, math.inf):
                dist[u] = cand
                heap.push(u, cand)
                stats.pushes += 1
    return best, stats


def bfs_hops(graph, source: int, target: int) -> Tuple[float, QueryStats]:
    """Unweighted shortest-path length via BFS, stopping at the target."""
    _check_endpoints(graph, source, target)
    stats = QueryStats()
    if source == target:
        return 0.0, stats
    hops: Dict[int, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        stats.activations += 1
        for u, _w in graph.out_items(v):
            stats.relaxations += 1
            if u in hops:
                continue
            hops[u] = hops[v] + 1
            stats.pushes += 1
            if u == target:
                return float(hops[u]), stats
            queue.append(u)
    return math.inf, stats


def full_sssp(graph, source: int) -> Tuple[Dict[int, float], QueryStats]:
    """Exhaustive Dijkstra from ``source`` (no early stop).

    Models what an analytic engine pays when a query "can only be answered
    after accessing every connected vertex".
    """
    _check_endpoints(graph, source, None)
    stats = QueryStats()
    dist: Dict[int, float] = {source: 0.0}
    settled: set = set()
    heap = IndexedHeap()
    heap.push(source, 0.0)
    while heap:
        v, d = heap.pop()
        settled.add(v)
        stats.activations += 1
        for u, w in graph.out_items(v):
            stats.relaxations += 1
            if u in settled:
                continue
            cand = d + w
            if cand < dist.get(u, math.inf):
                dist[u] = cand
                heap.push(u, cand)
                stats.pushes += 1
    return dist, stats
