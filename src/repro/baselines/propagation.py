"""Label-correcting propagation engine — the vertex-centric system model.

The systems the paper measures (streaming/analytic graph engines extended
with pairwise pruning, Tripoline being the canonical upper-bound example)
are *vertex-centric, label-correcting* engines: active vertices push their
current labels to neighbors with no global priority ordering, so a vertex
can be activated many times and vertices farther than the answer get
activated freely.  In that execution model:

* with **no pruning**, a pairwise query costs a full propagation to
  convergence over the reachable region — the 100% activation baseline;
* with an **upper bound** from a triangle-inequality index, activations of
  vertices whose label already reaches the bound are suppressed — the paper
  measures this class at roughly half the activations;
* with SGraph's **lower bound** test, a vertex is suppressed as soon as
  ``label(v) + lb(v → t)`` cannot beat the bound — which collapses
  activations to the narrow corridor around the true shortest path, the
  "< 1% of vertices" observation.

This engine exists to reproduce that comparison (experiment E2) under the
execution model the claims are about; SGraph's production engine (ordered
bidirectional search in :mod:`repro.core.engine`) is measured alongside.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Dict, Optional

from repro.core.bounds import QueryBounds
from repro.core.hub_index import HubIndex
from repro.core.pairwise import QueryKind, QueryResult
from repro.core.pruning import PruningPolicy
from repro.core.semiring import ShortestDistance
from repro.core.stats import QueryStats
from repro.errors import ConfigError, QueryError


class PropagationEngine:
    """FIFO label-correcting pairwise distance engine with optional pruning.

    Only the additive shortest-distance algebra is supported — this engine
    exists to model the comparison systems, all of which are distance/
    reachability engines.
    """

    def __init__(
        self,
        graph,
        index: Optional[HubIndex] = None,
        policy: "PruningPolicy | str" = PruningPolicy.NONE,
    ) -> None:
        self._graph = graph
        self._policy = PruningPolicy.parse(policy)
        if self._policy.uses_index:
            if index is None:
                raise ConfigError(
                    f"policy {self._policy.value} requires a hub index"
                )
            if not isinstance(index.semiring, ShortestDistance):
                raise ConfigError(
                    "PropagationEngine only supports the distance semiring"
                )
            if index.graph is not graph:
                raise ConfigError(
                    "hub index was built over a different graph object"
                )
        self._index = index

    @property
    def policy(self) -> PruningPolicy:
        return self._policy

    def distance(self, source: int, target: int) -> QueryResult:
        start = time.perf_counter()
        value, stats = self._propagate(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.DISTANCE,
            source=source,
            target=target,
            value=value,
            stats=stats,
        )

    def _propagate(self, source: int, target: int) -> tuple:
        graph = self._graph
        stats = QueryStats()
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            return 0.0, stats

        bounds: Optional[QueryBounds] = None
        incumbent = math.inf
        use_ub = self._policy.uses_index
        use_lb = self._policy.uses_lower_bounds
        if self._policy.uses_index:
            assert self._index is not None
            bounds = QueryBounds(self._index, source, target)
            incumbent = bounds.upper_bound
            if use_lb:
                lower = bounds.lower_bound()
                if lower == math.inf:
                    stats.answered_by_index = True
                    return math.inf, stats
                if incumbent != math.inf and lower == incumbent:
                    stats.answered_by_index = True
                    return incumbent, stats

        labels: Dict[int, float] = {source: 0.0}
        queue = deque([source])
        queued = {source}
        while queue:
            v = queue.popleft()
            queued.discard(v)
            label = labels[v]
            if v == target:
                # Reaching the target tightens the pruning bound online,
                # exactly how the propagation systems use their estimate.
                incumbent = min(incumbent, label)
                continue
            if use_ub and incumbent != math.inf and label >= incumbent:
                stats.pruned_by_upper_bound += 1
                continue
            if use_lb:
                assert bounds is not None
                if bounds.prunable_forward(v, label, incumbent):
                    stats.pruned_by_lower_bound += 1
                    continue
            stats.activations += 1
            for u, w in graph.out_items(v):
                stats.relaxations += 1
                cand = label + w
                if cand < labels.get(u, math.inf):
                    labels[u] = cand
                    if u == target:
                        incumbent = min(incumbent, cand)
                    if u not in queued:
                        queue.append(u)
                        queued.add(u)
                        stats.pushes += 1
        value = min(incumbent, labels.get(target, math.inf))
        return value, stats
