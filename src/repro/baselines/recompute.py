"""The exhaustive-recompute comparator.

Models the analytic-engine strawman the paper's introduction motivates
against: a system with no pairwise specialization answers a point query by
computing a full single-source pass over the connected component (it "can
only be answered after accessing every connected vertex"), rescanning from
scratch at whatever epoch the query arrives.
"""

from __future__ import annotations

import math
import time

from repro.baselines.dijkstra import full_sssp
from repro.core.pairwise import QueryKind, QueryResult


class RecomputeEngine:
    """Per-query full SSSP; the latency yardstick for E3's slow end."""

    def __init__(self, graph) -> None:
        self._graph = graph

    # The engine keeps no state, so graph updates need no notification.
    def notify_edge_inserted(self, src: int, dst: int, weight: float) -> None:
        pass

    def notify_edge_deleted(self, src: int, dst: int, old_weight: float) -> None:
        pass

    settled_last_update = 0

    def distance(self, source: int, target: int) -> QueryResult:
        start = time.perf_counter()
        dist, stats = full_sssp(self._graph, source)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.DISTANCE,
            source=source,
            target=target,
            value=dist.get(target, math.inf),
            stats=stats,
        )

    def reachable(self, source: int, target: int) -> QueryResult:
        result = self.distance(source, target)
        return QueryResult(
            kind=QueryKind.REACHABILITY,
            source=source,
            target=target,
            value=1.0 if result.value != math.inf else 0.0,
            stats=result.stats,
        )
