"""Baseline systems the evaluation compares SGraph against."""

from repro.baselines.dijkstra import (
    bfs_hops,
    bidirectional_dijkstra,
    dijkstra_distance,
    full_sssp,
)
from repro.baselines.propagation import PropagationEngine
from repro.baselines.recompute import RecomputeEngine
from repro.baselines.streaming_engine import ContinuousPairwiseEngine
from repro.baselines.ub_only import UpperBoundOnlyEngine

__all__ = [
    "dijkstra_distance",
    "bidirectional_dijkstra",
    "bfs_hops",
    "full_sssp",
    "PropagationEngine",
    "RecomputeEngine",
    "ContinuousPairwiseEngine",
    "UpperBoundOnlyEngine",
]
