"""The continuous-maintenance streaming comparator (KickStarter-style).

Streaming graph engines take the opposite trade from SGraph: instead of an
index plus on-demand search, they keep the *answers themselves* fresh.  For
pairwise workloads that means maintaining one incremental SSSP tree per
registered query source; every graph update pays maintenance across all
registered trees, and a query is a dictionary lookup.

This engine defines the crossover experiment (E9): with few registered
sources and heavy update streams it wins on query latency; as the number of
distinct query sources grows (or updates dominate), per-update maintenance
swamps it and SGraph's k-hub index — whose maintenance cost is independent
of the query working set — takes over.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable

from repro.core.pairwise import QueryKind, QueryResult
from repro.core.semiring import SHORTEST_DISTANCE, PathSemiring
from repro.core.stats import QueryStats
from repro.errors import QueryError
from repro.streaming.incremental_sssp import IncrementalBestPath


class ContinuousPairwiseEngine:
    """Maintains exact answers for a registered set of query sources."""

    def __init__(
        self,
        graph,
        semiring: PathSemiring = SHORTEST_DISTANCE,
    ) -> None:
        self._graph = graph
        self._semiring = semiring
        self._trees: Dict[int, IncrementalBestPath] = {}
        self.settled_last_update = 0

    @property
    def num_registered(self) -> int:
        return len(self._trees)

    def register_source(self, source: int) -> None:
        """Start continuously maintaining answers from ``source``."""
        if source not in self._trees:
            self._trees[source] = IncrementalBestPath(
                self._graph, source, self._semiring, direction="forward"
            )

    def register_pairs(self, pairs: Iterable) -> None:
        """Register the source of every (source, target) pair."""
        for source, _target in pairs:
            self.register_source(source)

    # -- IndexListener protocol --------------------------------------------------

    def notify_edge_inserted(self, src: int, dst: int, weight: float) -> None:
        settled = 0
        for tree in self._trees.values():
            tree.on_edge_inserted(src, dst, weight)
            settled += tree.settled_last_op
        self.settled_last_update = settled

    def notify_edge_deleted(self, src: int, dst: int, old_weight: float) -> None:
        settled = 0
        for tree in self._trees.values():
            tree.on_edge_deleted(src, dst, old_weight)
            settled += tree.settled_last_op
        self.settled_last_update = settled

    # -- queries --------------------------------------------------------------------

    def distance(self, source: int, target: int) -> QueryResult:
        """O(1) lookup of the continuously maintained answer."""
        start = time.perf_counter()
        try:
            tree = self._trees[source]
        except KeyError:
            raise QueryError(
                f"source {source} was not registered with the streaming engine"
            ) from None
        value = tree.cost(target)
        stats = QueryStats()
        stats.answered_by_index = True
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.DISTANCE,
            source=source,
            target=target,
            value=value,
            stats=stats,
        )

    def reachable(self, source: int, target: int) -> QueryResult:
        result = self.distance(source, target)
        return QueryResult(
            kind=QueryKind.REACHABILITY,
            source=source,
            target=target,
            value=1.0 if self._semiring.is_reachable(result.value) else 0.0,
            stats=result.stats,
        )
