"""Command-line interface.

Usage (also available as ``python -m repro.cli``)::

    repro datasets                      # the E1 dataset table
    repro profile social-pl             # profile one dataset proxy
    repro query social-pl 3 1542        # run one pairwise query
    repro many social-pl 3 1542 97 210  # one-to-many from a published view
    repro serve social-pl --workers 2   # multiprocess shm serving demo
    repro serve social-pl --transport tcp  # + TCP plane server for remotes
    repro attach 127.0.0.1:4702         # remote reader over TCP
    repro experiment e2                 # regenerate one experiment table
    repro experiment all                # regenerate every table
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import format_table
from repro.core.config import SGraphConfig
from repro.errors import ConfigError, QueryError
from repro.core.hub_selection import STRATEGIES
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.stats import profile_graph
from repro.sgraph import SGraph


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_e1_datasets

    print(format_table(run_e1_datasets(), title="dataset proxies"))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset)
    profile = profile_graph(graph)
    rows = [{"dataset": args.dataset, **profile.as_row()}]
    print(format_table(rows, title=f"profile of {args.dataset}"))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset)
    sg = SGraph(
        graph=graph,
        config=SGraphConfig(
            num_hubs=args.hubs,
            hub_strategy=args.strategy,
            queries=("distance", "hops", "capacity"),
            backend=args.backend,
        ),
    )
    sg.rebuild_indexes()
    dispatch = {
        "distance": sg.distance,
        "hops": sg.hop_distance,
        "reachability": sg.reachable,
        "bottleneck": sg.bottleneck,
    }
    if args.repeat < 1:
        raise ConfigError("--repeat must be >= 1")
    run = dispatch[args.kind]
    result = run(args.source, args.target)
    stats = result.stats
    print(f"{args.kind}({args.source}, {args.target}) = {result.value}")
    print(
        f"  latency {1e3 * stats.elapsed:.3f} ms, "
        f"{stats.activations} activations, "
        f"answered_by_index={stats.answered_by_index}"
    )
    if args.repeat > 1:
        # Steady-state measurement: the first run above was the cold query
        # (it allocated the search workspace); the repeats reuse it, so
        # their median is the warm-workspace serving latency.
        warm = sorted(run(args.source, args.target).stats.elapsed
                      for _ in range(args.repeat - 1))
        median = warm[len(warm) // 2]
        print(
            f"  repeat x{args.repeat}: cold {1e3 * stats.elapsed:.3f} ms, "
            f"warm median {1e3 * median:.3f} ms"
        )
        family = {"distance": "distance", "hops": "hops",
                  "reachability": "distance"}.get(args.kind)
        if family is not None:
            ws = sg.workspace_stats(family)
            if ws["workspace_allocs"]:
                print(
                    f"  workspace: {ws['workspace_allocs']} allocs, "
                    f"{ws['workspace_hits']} hits, "
                    f"{ws['workspace_resets']} resets, "
                    f"{ws['touched_reset']} entries sparse-reset"
                )
    if args.path and args.kind == "distance":
        path_result = sg.shortest_path(args.source, args.target)
        print(f"  path: {path_result.path}")
    return 0


def _cmd_many(args: argparse.Namespace) -> int:
    import math

    from repro.streaming.versioning import VersionedStore

    graph = load_dataset(args.dataset)
    sg = SGraph(
        graph=graph,
        config=SGraphConfig(
            num_hubs=args.hubs,
            hub_strategy=args.strategy,
            queries=("distance",),
            backend=args.backend,
        ),
    )
    sg.rebuild_indexes()
    # Serve from a published epoch, the paper's read pattern: the batch runs
    # against the frozen snapshot (dense CSR + numpy hub rows unless
    # --backend dict), isolated from any later churn.
    view = VersionedStore(sg).publish()
    result = view.distance_many_result(args.source, args.targets)
    rows = [
        {"target": t,
         "distance": ("unreachable" if v == math.inf else round(v, 6))}
        for t, v in sorted(result.values.items())
    ]
    print(format_table(
        rows,
        title=f"distance_many({args.source}) @ epoch {result.epoch}",
    ))
    stats = result.stats
    print(
        f"  {len(result)} targets ({result.reachable_count} reachable) in "
        f"{1e3 * stats.elapsed:.3f} ms: {stats.activations} activations, "
        f"{stats.pruned_by_lower_bound} lb-pruned, "
        f"answered_by_index={stats.answered_by_index}"
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.tuning import auto_tune

    graph = load_dataset(args.dataset)
    result = auto_tune(graph, num_pairs=args.pairs)
    print(format_table(result.rows(), title=f"tuning {args.dataset}"))
    cfg = result.config
    print(f"\nchosen: strategy={cfg.hub_strategy} k={cfg.num_hubs}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.bench.trace import interleave, write_trace
    from repro.core.pairwise import QueryKind
    from repro.streaming.workload import query_stream, sliding_window_stream

    graph = load_dataset(args.dataset)
    updates = list(sliding_window_stream(graph, args.updates, seed=args.seed))
    pairs = query_stream(graph, args.queries, skew=args.skew, seed=args.seed + 1)
    queries = [(QueryKind.DISTANCE, s, t) for s, t in pairs]
    rate = max(1, args.updates // max(args.queries, 1))
    events = interleave(updates, queries, updates_per_query=rate)
    count = write_trace(args.output, events)
    print(f"recorded {count} events ({args.updates} updates, "
          f"{args.queries} queries) for {args.dataset} to {args.output}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.bench.trace import read_trace, replay_trace

    graph = load_dataset(args.dataset)
    sg = SGraph(
        graph=graph,
        config=SGraphConfig(num_hubs=args.hubs, hub_strategy=args.strategy,
                            queries=("distance", "hops", "capacity")),
    )
    sg.rebuild_indexes()
    report = replay_trace(sg, read_trace(args.trace))
    agg = report.query_stats
    print(f"replayed {report.updates_applied} updates, "
          f"{report.queries_answered} queries")
    if agg.total:
        print(f"  query mean {1e3 * agg.mean_elapsed:.3f} ms, "
              f"p99 {1e3 * agg.p(0.99):.3f} ms, "
              f"{agg.mean_activations:.1f} activations/query, "
              f"{100.0 * agg.answered_by_index / agg.total:.1f}% from index")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import random
    import time

    from repro.serving import leaked_segments, shm_available
    from repro.streaming.workload import query_stream

    if args.transport == "shm" and not shm_available():
        print("POSIX shared memory is unavailable on this platform",
              file=sys.stderr)
        return 1
    graph = load_dataset(args.dataset)
    sg = SGraph(
        graph=graph,
        config=SGraphConfig(num_hubs=args.hubs, hub_strategy=args.strategy,
                            queries=("distance",)),
    )
    if args.delta and args.transport != "tcp":
        print("--delta requires --transport tcp", file=sys.stderr)
        return 2
    pairs = list(query_stream(graph, args.queries, seed=7))
    verts = sorted(graph.vertices())
    rng = random.Random(11)
    options = {}
    if args.transport == "tcp":
        options = {"host": args.host, "port": args.port,
                   "cache_planes": args.cache_planes,
                   "retry": args.retry, "max_backoff": args.max_backoff}
    with sg.serve(workers=args.workers, transport=args.transport,
                  chunk=args.chunk, delta=args.delta, **options) as session:
        prefix = session.prefix
        print(f"serving {args.dataset} with {args.workers} worker "
              f"process(es) over {session.transport.describe()}")
        if args.transport == "tcp":
            print(f"  remote readers: repro attach "
                  f"{session.transport.address}")
        for round_no in range(args.rounds):
            start = time.perf_counter()
            answers = session.map_distance(pairs)
            elapsed = time.perf_counter() - start
            epochs = sorted({epoch for _, _, epoch in answers})
            print(f"  round {round_no}: {len(answers)} queries in "
                  f"{1e3 * elapsed:.1f} ms "
                  f"({len(answers) / elapsed:.0f} q/s) @ epochs {epochs}")
            for _ in range(args.updates):
                u, v = rng.choice(verts), rng.choice(verts)
                if u != v:
                    sg.add_edge(u, v, rng.uniform(0.5, 2.0))
            view = session.publish()
            print(f"  ingested {args.updates} updates, "
                  f"published epoch {view.epoch}")
        if args.transport == "tcp":
            row = session.stats_row()
            sent, full = row["bytes_sent"], row["bytes_full"]
            saved = f", {100.0 * (1 - sent / full):.1f}% saved" if full else ""
            print(f"  transfer: {row['delta_fetches']} delta / "
                  f"{row['full_fetches']} full fetches, "
                  f"{sent} of {full} bytes{saved} "
                  f"(cache {row.get('cached', 0)}/{row.get('cache_planes', 0)})")
    leaked = leaked_segments(prefix)
    print(f"closed: {len(leaked)} leaked shm segment(s)")
    return 1 if leaked else 0


def _cmd_attach(args: argparse.Namespace) -> int:
    import random
    import time

    from repro.serving.net import NetReader

    try:
        with NetReader(args.address, cache_planes=args.cache_planes,
                       delta=args.delta, retry=args.retry,
                       max_backoff=args.max_backoff,
                       degrade=args.stale_ok) as reader:
            epoch = reader.refresh()
            if epoch is None:
                print(f"attached to {args.address}: nothing published yet",
                      file=sys.stderr)
                return 1
            print(f"attached to {args.address} as reader "
                  f"{reader.client.reader_id}, serving epoch {epoch}")
            verts = reader.vertices()
            rng = random.Random(13)
            for round_no in range(args.rounds):
                start = time.perf_counter()
                hits = 0
                for _ in range(args.queries):
                    s, t = rng.choice(verts), rng.choice(verts)
                    _value, stats, epoch = reader.distance(s, t)
                    hits += stats.answered_by_index
                elapsed = time.perf_counter() - start
                marker = " [stale]" if reader.stale else ""
                print(f"  round {round_no}: {args.queries} queries in "
                      f"{1e3 * elapsed:.1f} ms "
                      f"({args.queries / elapsed:.0f} q/s) "
                      f"@ epoch {epoch}{marker}, "
                      f"{hits} from index")
                time.sleep(args.pause)
            if args.delta:
                transfer = reader.transfer_stats()
                print(f"  transfer: {transfer['delta_fetches']} delta / "
                      f"{transfer['full_fetches']} full fetches, "
                      f"{transfer['bytes_received']} of "
                      f"{transfer['bytes_full']} bytes")
    except (ConfigError, QueryError) as exc:
        print(f"attach {args.address}: server went away ({exc})",
              file=sys.stderr)
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    def run(fn):
        # Pass --backend through to the experiments that understand it; the
        # rest (update-path, memory, …) have no serving plane to choose.
        if "backend" in inspect.signature(fn).parameters:
            return fn(backend=args.backend)
        return fn()

    key = args.id.lower()
    if key == "all":
        for title, fn in ALL_EXPERIMENTS.items():
            print(format_table(run(fn), title=f"== {title} =="))
            print()
        return 0
    for title, fn in ALL_EXPERIMENTS.items():
        if title.lower().startswith(key + " "):
            print(format_table(run(fn), title=f"== {title} =="))
            return 0
    print(f"unknown experiment {args.id!r}; known: "
          f"{', '.join(t.split()[0] for t in ALL_EXPERIMENTS)} or 'all'",
          file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SGraph reproduction: pairwise queries over evolving graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset proxies").set_defaults(
        fn=_cmd_datasets
    )

    profile = sub.add_parser("profile", help="profile one dataset proxy")
    profile.add_argument("dataset", choices=dataset_names())
    profile.set_defaults(fn=_cmd_profile)

    query = sub.add_parser("query", help="run one pairwise query")
    query.add_argument("dataset", choices=dataset_names())
    query.add_argument("source", type=int)
    query.add_argument("target", type=int)
    query.add_argument("--kind", default="distance",
                       choices=["distance", "hops", "reachability",
                                "bottleneck"])
    query.add_argument("--hubs", type=int, default=16)
    query.add_argument("--strategy", default="degree",
                       choices=sorted(STRATEGIES))
    query.add_argument("--path", action="store_true",
                       help="also print the witness path (distance only)")
    query.add_argument("--repeat", type=int, default=1,
                       help="run the query N times and report cold vs "
                            "warm-workspace (steady-state) latency")
    query.add_argument("--backend", default="auto",
                       choices=["auto", "dense", "dict"],
                       help="serving plane for distance/hops queries")
    query.set_defaults(fn=_cmd_query)

    many = sub.add_parser(
        "many", help="run one batched one-to-many query from a published view"
    )
    many.add_argument("dataset", choices=dataset_names())
    many.add_argument("source", type=int)
    many.add_argument("targets", type=int, nargs="+")
    many.add_argument("--hubs", type=int, default=16)
    many.add_argument("--strategy", default="degree",
                      choices=sorted(STRATEGIES))
    many.add_argument("--backend", default="auto",
                      choices=["auto", "dense", "dict"],
                      help="serving plane for the published view")
    many.set_defaults(fn=_cmd_many)

    tune = sub.add_parser("tune", help="auto-tune hub configuration")
    tune.add_argument("dataset", choices=dataset_names())
    tune.add_argument("--pairs", type=int, default=24)
    tune.set_defaults(fn=_cmd_tune)

    record = sub.add_parser("record", help="record a workload trace")
    record.add_argument("dataset", choices=dataset_names())
    record.add_argument("output", help="trace file to write")
    record.add_argument("--updates", type=int, default=1000)
    record.add_argument("--queries", type=int, default=50)
    record.add_argument("--skew", type=float, default=1.0)
    record.add_argument("--seed", type=int, default=0)
    record.set_defaults(fn=_cmd_record)

    replay = sub.add_parser("replay", help="replay a recorded trace")
    replay.add_argument("dataset", choices=dataset_names())
    replay.add_argument("trace", help="trace file to replay")
    replay.add_argument("--hubs", type=int, default=16)
    replay.add_argument("--strategy", default="degree",
                        choices=sorted(STRATEGIES))
    replay.set_defaults(fn=_cmd_replay)

    serve = sub.add_parser(
        "serve", help="serve a dataset from a multiprocess worker pool"
    )
    serve.add_argument("dataset", choices=dataset_names())
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--hubs", type=int, default=16)
    serve.add_argument("--strategy", default="degree",
                       choices=sorted(STRATEGIES))
    serve.add_argument("--queries", type=int, default=64,
                       help="pairwise queries fanned out per round")
    serve.add_argument("--rounds", type=int, default=3,
                       help="query/ingest/publish rounds to run")
    serve.add_argument("--updates", type=int, default=20,
                       help="edge updates ingested between rounds")
    serve.add_argument("--transport", default="shm", choices=["shm", "tcp"],
                       help="plane transport: shm segments or a TCP "
                            "plane server remote readers can attach to")
    serve.add_argument("--chunk", type=int, default=None,
                       help="queries bundled per pool message")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --transport tcp")
    serve.add_argument("--cache-planes", type=int, default=4,
                       help="tcp only: published planes the server keeps "
                            "as delta bases (and readers keep cached)")
    serve.add_argument("--delta", action="store_true",
                       help="tcp only: ship chunk-addressed deltas to "
                            "readers that hold a cached base plane")
    serve.add_argument("--retry", type=int, default=4,
                       help="tcp only: reconnect attempts per reader op "
                            "before giving up")
    serve.add_argument("--max-backoff", type=float, default=2.0,
                       help="tcp only: reconnect backoff ceiling in "
                            "seconds (exponential, jittered)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port for --transport tcp (0 = ephemeral)")
    serve.set_defaults(fn=_cmd_serve)

    attach = sub.add_parser(
        "attach", help="attach a standalone reader to a TCP plane server"
    )
    attach.add_argument("address", help="writer address, host:port "
                                        "(printed by repro serve "
                                        "--transport tcp)")
    attach.add_argument("--queries", type=int, default=64,
                        help="random pairwise queries per round")
    attach.add_argument("--rounds", type=int, default=3,
                        help="query rounds to run before detaching")
    attach.add_argument("--pause", type=float, default=0.0,
                        help="seconds to sleep between rounds")
    attach.add_argument("--delta", action="store_true",
                        help="fetch chunk-addressed deltas against the "
                             "cached base plane instead of full payloads")
    attach.add_argument("--retry", type=int, default=4,
                        help="reconnect attempts per op before giving up")
    attach.add_argument("--max-backoff", type=float, default=2.0,
                        help="reconnect backoff ceiling in seconds "
                             "(exponential, jittered)")
    attach.add_argument("--stale-ok", action="store_true",
                        help="keep answering from the last-acquired plane "
                             "(marked [stale]) when the server is "
                             "unreachable, instead of exiting")
    attach.add_argument("--cache-planes", type=int, default=4,
                        help="decoded planes kept in the local LRU cache")
    attach.set_defaults(fn=_cmd_attach)

    experiment = sub.add_parser("experiment",
                                help="regenerate an experiment table")
    experiment.add_argument("id", help="e1..e25, or 'all'")
    experiment.add_argument("--backend", default="auto",
                            choices=["auto", "dense", "dict"],
                            help="serving plane for backend-aware experiments")
    experiment.set_defaults(fn=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
