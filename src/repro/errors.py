"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from :class:`ReproError`
so that callers can catch library failures without also swallowing Python
built-ins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """A structural problem with a graph (bad vertex, bad edge, bad weight)."""


class VertexNotFoundError(GraphError):
    """A vertex id was referenced that does not exist in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex} does not exist")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"edge ({src}, {dst}) does not exist")
        self.src = src
        self.dst = dst


class InvalidWeightError(GraphError):
    """An edge weight was negative, NaN, or otherwise unusable."""


class SnapshotError(ReproError):
    """A snapshot was used incorrectly (e.g. stale epoch, mutation attempt)."""


class IndexStateError(ReproError):
    """The hub index is out of sync with the graph epoch it claims to cover."""


class QueryError(ReproError):
    """A pairwise query was malformed or issued against the wrong engine."""


class PeerClosedError(QueryError):
    """The remote endpoint closed the connection mid-operation.

    Raised by the TCP serving transport when a recv sees EOF (or a short
    read) inside a frame: the peer went away, so the operation *may*
    succeed against a reconnected (possibly restarted) server — the
    retry layer treats it as transient.
    """


class DeadlineExceededError(QueryError):
    """An operation ran out of its per-op time budget.

    Raised by the TCP serving transport when an operation (including all
    its reconnect attempts and backoff sleeps) would exceed its deadline.
    Unlike :class:`PeerClosedError` this is terminal for the op: retrying
    further would only hang the caller past its budget.
    """


class CorruptFrameError(QueryError):
    """A received frame failed its integrity check (digest or header).

    The payload that arrived is not the payload that was sent — a
    transport-level corruption.  The retry layer treats it as transient:
    a reconnect and refetch normally yields a clean frame.
    """


class ConfigError(ReproError):
    """An engine or harness configuration value is out of range."""


class WorkloadError(ReproError):
    """A benchmark workload specification is inconsistent."""
