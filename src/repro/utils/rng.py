"""Deterministic random-number plumbing.

Every generator, workload, and benchmark in this library takes an explicit
seed and derives child streams with :func:`spawn_rngs`, so that a run is
reproducible end-to-end while independent components (e.g. the update stream
and the query stream of one experiment) never share a stream.
"""

from __future__ import annotations

import random
from typing import List


def make_rng(seed: int) -> random.Random:
    """Create a ``random.Random`` from an integer seed."""
    return random.Random(seed)


def spawn_rngs(seed: int, count: int) -> List[random.Random]:
    """Derive ``count`` statistically-independent child generators.

    Children are seeded from a parent stream rather than ``seed + i`` so that
    adjacent experiment seeds do not produce correlated child streams.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = random.Random(seed)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]
