"""Wall-clock measurement helpers used by the benchmark harness."""

from __future__ import annotations

import time
from typing import List, Optional


class Stopwatch:
    """Accumulating stopwatch with lap support.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        sw.elapsed  # seconds

    Each ``with`` block adds a lap; ``elapsed`` is the total across laps.
    """

    def __init__(self) -> None:
        self._laps: List[float] = []
        self._started_at: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self._laps.append(lap)
        return lap

    @property
    def elapsed(self) -> float:
        """Total seconds across all completed laps."""
        return sum(self._laps)

    @property
    def laps(self) -> List[float]:
        return list(self._laps)

    def reset(self) -> None:
        self._laps.clear()
        self._started_at = None


def format_duration(seconds: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits legible."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
