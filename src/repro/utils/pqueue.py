"""Indexed binary min-heap with decrease-key.

Dijkstra-style searches dominate this library's runtime, and the classic
``heapq`` lazy-deletion idiom allocates one tuple per *push* including stale
ones.  This heap keys entries by an integer handle (vertex id) and supports
``decrease`` in O(log n) without leaving stale entries behind, which keeps
heap sizes equal to frontier sizes — that matters when we *count*
activations for the pruning experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class IndexedHeap:
    """Min-heap of ``(priority, key)`` pairs with O(log n) decrease-key.

    Keys are hashable (in practice: integer vertex ids).  Each key appears at
    most once; pushing an existing key with a smaller priority updates it in
    place, and pushing with a larger priority is ignored (the standard
    relaxation contract).
    """

    __slots__ = ("_heap", "_pos")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int]] = []
        self._pos: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, key: int) -> bool:
        return key in self._pos

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        """Iterate over (priority, key) pairs in arbitrary heap order."""
        return iter(self._heap)

    def priority(self, key: int) -> Optional[float]:
        """Return the current priority of ``key``, or None if absent."""
        idx = self._pos.get(key)
        if idx is None:
            return None
        return self._heap[idx][0]

    def push(self, key: int, priority: float) -> bool:
        """Insert ``key`` or decrease its priority.

        Returns True if the heap changed (new key, or a strictly smaller
        priority for an existing key); False if the existing priority was
        already <= the offered one.
        """
        idx = self._pos.get(key)
        if idx is None:
            self._heap.append((priority, key))
            self._pos[key] = len(self._heap) - 1
            self._sift_up(len(self._heap) - 1)
            return True
        if priority < self._heap[idx][0]:
            self._heap[idx] = (priority, key)
            self._sift_up(idx)
            return True
        return False

    def pop(self) -> Tuple[int, float]:
        """Remove and return ``(key, priority)`` with the smallest priority."""
        if not self._heap:
            raise IndexError("pop from empty IndexedHeap")
        priority, key = self._heap[0]
        del self._pos[key]
        last = self._heap.pop()
        if self._heap:
            self._heap[0] = last
            self._pos[last[1]] = 0
            self._sift_down(0)
        return key, priority

    def peek(self) -> Tuple[int, float]:
        """Return ``(key, priority)`` with the smallest priority, no removal."""
        if not self._heap:
            raise IndexError("peek at empty IndexedHeap")
        priority, key = self._heap[0]
        return key, priority

    def remove(self, key: int) -> bool:
        """Remove ``key`` if present.  Returns True if it was removed."""
        idx = self._pos.pop(key, None)
        if idx is None:
            return False
        last = self._heap.pop()
        if idx < len(self._heap):
            self._heap[idx] = last
            self._pos[last[1]] = idx
            # The replacement may need to move either direction.
            self._sift_up(idx)
            self._sift_down(self._pos[last[1]])
        return True

    def clear(self) -> None:
        """Empty the heap in place, retaining the backing containers.

        The backing list and position dict are cleared, never replaced, so
        external references to the heap stay valid and a cleared heap can be
        refilled immediately — this is what lets a
        :class:`~repro.core.workspace.SearchWorkspace` keep two heaps alive
        across thousands of queries without per-query container churn.
        Cost is O(current size), independent of historical peak size.
        """
        self._heap.clear()
        self._pos.clear()

    # -- internal sifting ---------------------------------------------------

    def _sift_up(self, idx: int) -> None:
        heap = self._heap
        pos = self._pos
        item = heap[idx]
        while idx > 0:
            parent = (idx - 1) >> 1
            if heap[parent][0] <= item[0]:
                break
            heap[idx] = heap[parent]
            pos[heap[idx][1]] = idx
            idx = parent
        heap[idx] = item
        pos[item[1]] = idx

    def _sift_down(self, idx: int) -> None:
        heap = self._heap
        pos = self._pos
        size = len(heap)
        item = heap[idx]
        while True:
            child = 2 * idx + 1
            if child >= size:
                break
            right = child + 1
            if right < size and heap[right][0] < heap[child][0]:
                child = right
            if heap[child][0] >= item[0]:
                break
            heap[idx] = heap[child]
            pos[heap[idx][1]] = idx
            idx = child
        heap[idx] = item
        pos[item[1]] = idx
