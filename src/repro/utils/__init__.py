"""Shared low-level utilities: indexed heaps, timers, deterministic RNG."""

from repro.utils.pqueue import IndexedHeap
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timer import Stopwatch, format_duration

__all__ = [
    "IndexedHeap",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "format_duration",
]
