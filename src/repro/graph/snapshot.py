"""Immutable graph snapshots.

A :class:`GraphSnapshot` is the unit of isolation between the ingestion path
and the query path: the scheduler publishes snapshots at epoch boundaries and
every query (and every hub-index build) runs against exactly one snapshot.
Snapshots expose the same traversal protocol as
:class:`~repro.graph.dynamic_graph.DynamicGraph` (``out_items`` /
``in_items``), so engines are agnostic to which one they are given.
"""

from __future__ import annotations

from typing import ItemsView, Iterator, List, Mapping, Optional, Tuple

from repro.errors import EdgeNotFoundError, SnapshotError, VertexNotFoundError

Edge = Tuple[int, int, float]

Adjacency = Mapping[int, Mapping[int, float]]


class GraphSnapshot:
    """Frozen view of a graph at a specific epoch.

    Construct via :meth:`repro.graph.DynamicGraph.snapshot`; the constructor
    takes ownership of the mappings passed in, which must never be mutated
    afterwards.  The mappings may structurally share unchanged per-vertex
    adjacency with other snapshots (and, under the copy-on-write discipline,
    with the live graph) — sharing is invisible through this read-only
    surface.
    """

    __slots__ = ("_out", "_in", "_directed", "_num_edges", "_epoch", "_csr")

    def __init__(
        self,
        out: Adjacency,
        inn: Optional[Adjacency],
        directed: bool,
        num_edges: int,
        epoch: int,
    ) -> None:
        if directed and inn is None:
            raise SnapshotError("directed snapshot requires a reverse adjacency")
        self._out = out
        self._in = inn if directed else out
        self._directed = directed
        self._num_edges = num_edges
        self._epoch = epoch
        self._csr: Optional["CSRGraph"] = None

    # -- identity -----------------------------------------------------------

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._out

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"GraphSnapshot({kind}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, epoch={self._epoch})"
        )

    # -- traversal protocol ---------------------------------------------------

    def vertices(self) -> Iterator[int]:
        return iter(self._out)

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._out

    def has_edge(self, src: int, dst: int) -> bool:
        return src in self._out and dst in self._out[src]

    def edge_weight(self, src: int, dst: int) -> float:
        if src not in self._out:
            raise VertexNotFoundError(src)
        try:
            return self._out[src][dst]
        except KeyError:
            raise EdgeNotFoundError(src, dst) from None

    def out_items(self, vertex: int) -> ItemsView[int, float]:
        try:
            return self._out[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_items(self, vertex: int) -> ItemsView[int, float]:
        try:
            return self._in[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_degree(self, vertex: int) -> int:
        try:
            return len(self._out[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_degree(self, vertex: int) -> int:
        try:
            return len(self._in[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: int) -> int:
        if self._directed:
            return self.out_degree(vertex) + self.in_degree(vertex)
        return self.out_degree(vertex)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges; undirected edges appear once (src <= dst)."""
        if self._directed:
            for src, nbrs in self._out.items():
                for dst, weight in nbrs.items():
                    yield src, dst, weight
        else:
            for src, nbrs in self._out.items():
                for dst, weight in nbrs.items():
                    if src <= dst:
                        yield src, dst, weight

    def edge_list(self) -> List[Edge]:
        return list(self.edges())

    def to_csr(self, reuse: Optional["CSRGraph"] = None) -> "CSRGraph":
        """The numpy CSR materialization of this snapshot (memoized).

        ``reuse`` optionally passes a previous epoch's CSR whose id mapping
        is adopted when the vertex set is unchanged (see
        :meth:`repro.graph.csr.CSRGraph.from_snapshot`); it only influences
        the first call — later calls return the memoized instance.
        """
        if self._csr is None:
            from repro.graph.csr import CSRGraph

            self._csr = CSRGraph.from_snapshot(self, prev=reuse)
        return self._csr
