"""Edge-list serialization.

The wire format is the plain whitespace-separated edge list used by SNAP and
Graph500 tooling: one ``src dst [weight]`` triple per line, ``#`` comments
allowed.  This is how real datasets would be loaded if they were available;
the tests round-trip generated graphs through it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.dynamic_graph import DynamicGraph


def write_edge_list(graph: DynamicGraph, path: Union[str, Path]) -> int:
    """Write ``graph`` as an edge list.  Returns the number of lines written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="ascii") as fh:
        fh.write(f"# directed={int(graph.directed)}\n")
        for src, dst, weight in graph.edges():
            fh.write(f"{src} {dst} {weight!r}\n")
            count += 1
        # Isolated vertices need explicit records or they vanish on re-read.
        for v in graph.vertices():
            if graph.degree(v) == 0:
                fh.write(f"v {v}\n")
                count += 1
    return count


def read_edge_list(
    path: Union[str, Path], directed: bool | None = None
) -> DynamicGraph:
    """Read an edge list written by :func:`write_edge_list` or SNAP tooling.

    ``directed`` overrides the header flag when given (SNAP files carry no
    header; they default to undirected unless told otherwise).
    """
    path = Path(path)
    graph: DynamicGraph | None = None
    header_directed = False
    with path.open("r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "directed=" in line:
                    header_directed = line.split("directed=")[1].strip() == "1"
                continue
            if graph is None:
                use_directed = header_directed if directed is None else directed
                graph = DynamicGraph(directed=use_directed)
            parts = line.split()
            if parts[0] == "v":
                if len(parts) != 2:
                    raise GraphError(f"{path}:{lineno}: malformed vertex record")
                graph.add_vertex(int(parts[1]))
                continue
            if len(parts) == 2:
                graph.add_edge(int(parts[0]), int(parts[1]))
            elif len(parts) == 3:
                graph.add_edge(int(parts[0]), int(parts[1]), float(parts[2]))
            else:
                raise GraphError(f"{path}:{lineno}: malformed edge record")
    if graph is None:
        use_directed = header_directed if directed is None else directed
        graph = DynamicGraph(directed=use_directed)
    return graph
