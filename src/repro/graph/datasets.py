"""Dataset stand-ins for the paper's evaluation graphs.

The paper evaluates on public web/social graphs at 10^8–10^9 edge scale
(the usual suspects for this line of work: LiveJournal, Twitter, UK web
crawls, plus road networks for weighted pairwise queries).  Pure Python
cannot traverse graphs of that size in interactive time, and the raw files
are not available offline, so each paper graph is replaced by a *synthetic
proxy of the same topology class* at a scale the harness can sweep in
seconds.  The pruning-effectiveness shapes reported in EXPERIMENTS.md depend
on degree skew and diameter — which the proxies reproduce — not on raw size.

Each proxy is registered in :data:`DATASETS` with the topology class it
stands in for, and built deterministically from its recorded seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    small_world_graph,
)


@dataclass(frozen=True)
class DatasetSpec:
    """A registered dataset proxy.

    Attributes
    ----------
    name:
        Short key used by the harness and benchmarks.
    stands_in_for:
        The class of paper-scale graph this proxy models.
    topology:
        Human-readable topology class.
    builder:
        Zero-argument callable producing the graph.
    weighted:
        Whether edge weights are non-uniform (weighted-distance queries
        are only interesting on these).
    """

    name: str
    stands_in_for: str
    topology: str
    builder: Callable[[], DynamicGraph]
    weighted: bool


def _social() -> DynamicGraph:
    return power_law_graph(
        num_vertices=4000, edges_per_vertex=5, seed=11, weight_range=(1.0, 4.0)
    )


def _web() -> DynamicGraph:
    return rmat_graph(scale=12, edge_factor=6, seed=12, weight_range=(1.0, 4.0))


def _road() -> DynamicGraph:
    return grid_graph(rows=64, cols=64, seed=13, weight_range=(1.0, 10.0),
                      diagonal_fraction=0.15)


def _collab() -> DynamicGraph:
    return small_world_graph(
        num_vertices=4000,
        nearest_neighbors=6,
        rewire_probability=0.08,
        seed=14,
        weight_range=(1.0, 4.0),
    )


def _uniform() -> DynamicGraph:
    return erdos_renyi_graph(
        num_vertices=3000, num_edges=15000, seed=15, weight_range=(1.0, 4.0)
    )


def _web_directed() -> DynamicGraph:
    return rmat_graph(scale=11, edge_factor=8, seed=16, directed=True,
                      weight_range=(1.0, 4.0))


def _sensor_reliability() -> DynamicGraph:
    # Edge weights are link success probabilities: a mesh with mostly good
    # links and a tail of flaky ones.
    return small_world_graph(
        num_vertices=2500,
        nearest_neighbors=6,
        rewire_probability=0.05,
        seed=17,
        weight_range=(0.55, 0.999),
    )


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="social-pl",
            stands_in_for="LiveJournal / Twitter-class social graph",
            topology="power-law (preferential attachment)",
            builder=_social,
            weighted=True,
        ),
        DatasetSpec(
            name="web-rmat",
            stands_in_for="UK web-crawl-class graph",
            topology="R-MAT (Graph500 skew)",
            builder=_web,
            weighted=True,
        ),
        DatasetSpec(
            name="road-grid",
            stands_in_for="USA-road-d-class road network",
            topology="lattice with random lengths",
            builder=_road,
            weighted=True,
        ),
        DatasetSpec(
            name="collab-sw",
            stands_in_for="DBLP/collaboration-class graph",
            topology="small-world (Watts-Strogatz)",
            builder=_collab,
            weighted=True,
        ),
        DatasetSpec(
            name="uniform-er",
            stands_in_for="control topology (no skew)",
            topology="Erdos-Renyi",
            builder=_uniform,
            weighted=True,
        ),
        DatasetSpec(
            name="web-dir",
            stands_in_for="directed web/follow-graph (Twitter arcs)",
            topology="directed R-MAT (Graph500 skew)",
            builder=_web_directed,
            weighted=True,
        ),
        DatasetSpec(
            name="sensor-rel",
            stands_in_for="probability-weighted sensor/overlay mesh",
            topology="small-world, weights in (0, 1]",
            builder=_sensor_reliability,
            weighted=True,
        ),
    ]
}


def dataset_names() -> List[str]:
    """Registered proxy names in registration order."""
    return list(DATASETS)


def load_dataset(name: str) -> DynamicGraph:
    """Build the named proxy graph deterministically."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; known: {', '.join(DATASETS)}"
        ) from None
    return spec.builder()


def load_scaled(name: str, scale: float) -> DynamicGraph:
    """Build a size-scaled variant of a proxy for sweep experiments.

    ``scale`` multiplies the vertex count (clamped to sane minimums); only the
    generators that scale cleanly are supported.
    """
    if scale <= 0:
        raise ConfigError("scale must be positive")
    if name == "social-pl":
        n = max(64, int(4000 * scale))
        return power_law_graph(num_vertices=n, edges_per_vertex=5, seed=11,
                               weight_range=(1.0, 4.0))
    if name == "road-grid":
        side = max(8, int(64 * scale ** 0.5))
        return grid_graph(rows=side, cols=side, seed=13,
                          weight_range=(1.0, 10.0), diagonal_fraction=0.15)
    if name == "uniform-er":
        n = max(64, int(3000 * scale))
        return erdos_renyi_graph(num_vertices=n, num_edges=5 * n, seed=15,
                                 weight_range=(1.0, 4.0))
    raise ConfigError(f"dataset {name!r} does not support scaling")
