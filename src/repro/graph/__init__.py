"""Evolving-graph substrate: storage, snapshots, CSR, generators, datasets."""

from repro.graph.algorithms import (
    ReachabilityOracle,
    condensation,
    strongly_connected_components,
)
from repro.graph.csr import CSRGraph
from repro.graph.deltas import CostJournal, LayeredMapping, derive_mapping
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.history import HistoryGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    small_world_graph,
)
from repro.graph.snapshot import GraphSnapshot

__all__ = [
    "DynamicGraph",
    "GraphSnapshot",
    "CSRGraph",
    "CostJournal",
    "LayeredMapping",
    "derive_mapping",
    "HistoryGraph",
    "ReachabilityOracle",
    "condensation",
    "strongly_connected_components",
    "erdos_renyi_graph",
    "power_law_graph",
    "rmat_graph",
    "grid_graph",
    "small_world_graph",
]
