"""Structural statistics used by the dataset table (E1) and hub selection.

Everything here runs on the traversal protocol shared by
:class:`~repro.graph.DynamicGraph` and
:class:`~repro.graph.GraphSnapshot`, so live graphs and snapshots can both
be profiled.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import GraphError


@dataclass(frozen=True)
class GraphProfile:
    """Summary statistics for one graph."""

    num_vertices: int
    num_edges: int
    directed: bool
    max_degree: int
    mean_degree: float
    degree_skew: float
    estimated_diameter: int
    num_components: int
    largest_component_fraction: float

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the harness table printer."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "dir": "Y" if self.directed else "N",
            "d_max": self.max_degree,
            "d_avg": round(self.mean_degree, 2),
            "skew": round(self.degree_skew, 2),
            "diam~": self.estimated_diameter,
            "comps": self.num_components,
            "lcc%": round(100.0 * self.largest_component_fraction, 1),
        }


def degree_sequence(graph) -> List[int]:
    """Total degree of every vertex."""
    return [graph.degree(v) for v in graph.vertices()]


def degree_skew(degrees: Sequence[int]) -> float:
    """Ratio of max degree to mean degree — a cheap skew indicator.

    Power-law graphs score in the tens-to-hundreds; lattices score ~1.
    """
    if not degrees:
        return 0.0
    mean = sum(degrees) / len(degrees)
    if mean == 0:
        return 0.0
    return max(degrees) / mean


def _bfs_hops(graph, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` following out-edges."""
    hops = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u, _w in graph.out_items(v):
            if u not in hops:
                hops[u] = hops[v] + 1
                queue.append(u)
    return hops


def estimate_diameter(graph, samples: int = 8, seed: int = 0) -> int:
    """Double-sweep lower bound on the (hop) diameter.

    Runs ``samples`` BFS double sweeps from random starts and returns the
    largest eccentricity seen.  Exact diameters are overkill for the dataset
    table; this is the standard cheap estimator.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return 0
    rng = random.Random(seed)
    best = 0
    for _ in range(samples):
        start = rng.choice(vertices)
        hops = _bfs_hops(graph, start)
        if not hops:
            continue
        far, ecc = max(hops.items(), key=lambda kv: kv[1])
        best = max(best, ecc)
        hops2 = _bfs_hops(graph, far)
        if hops2:
            best = max(best, max(hops2.values()))
    return best


def connected_components(graph) -> List[List[int]]:
    """Weakly-connected components (edge direction ignored)."""
    seen = set()
    components: List[List[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            component.append(v)
            for u, _w in graph.out_items(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
            for u, _w in graph.in_items(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        components.append(component)
    return components


def largest_component(graph) -> List[int]:
    """Vertices of the largest weakly-connected component."""
    components = connected_components(graph)
    if not components:
        raise GraphError("graph has no vertices")
    return max(components, key=len)


def profile_graph(graph, diameter_samples: int = 4, seed: int = 0) -> GraphProfile:
    """Compute the full :class:`GraphProfile` for a graph or snapshot."""
    degrees = degree_sequence(graph)
    components = connected_components(graph)
    n = graph.num_vertices
    largest = max((len(c) for c in components), default=0)
    return GraphProfile(
        num_vertices=n,
        num_edges=graph.num_edges,
        directed=graph.directed,
        max_degree=max(degrees, default=0),
        mean_degree=(sum(degrees) / n) if n else 0.0,
        degree_skew=degree_skew(degrees),
        estimated_diameter=estimate_diameter(graph, samples=diameter_samples,
                                             seed=seed),
        num_components=len(components),
        largest_component_fraction=(largest / n) if n else 0.0,
    )


def sample_vertex_pairs(
    graph,
    count: int,
    seed: int = 0,
    connected_only: bool = True,
    min_hops: int = 0,
) -> List[tuple]:
    """Sample ``count`` (s, t) query pairs, s != t.

    With ``connected_only`` the pairs are drawn from the largest weakly-
    connected component so distance queries have finite answers; with
    ``min_hops`` pairs closer than that many hops are rejected, which is how
    the latency experiments avoid trivial adjacent-pair queries.
    """
    pool = largest_component(graph) if connected_only else list(graph.vertices())
    if len(pool) < 2:
        raise GraphError("need at least two vertices to sample pairs")
    rng = random.Random(seed)
    pairs = []
    attempts = 0
    max_attempts = 200 * count + 1000
    while len(pairs) < count:
        attempts += 1
        if attempts > max_attempts:
            raise GraphError(
                f"could not sample {count} pairs with min_hops={min_hops}"
            )
        s = rng.choice(pool)
        t = rng.choice(pool)
        if s == t:
            continue
        if min_hops > 0:
            hops = _bfs_limited(graph, s, t, min_hops)
            if hops is not None and hops < min_hops:
                continue
        pairs.append((s, t))
    return pairs


def _bfs_limited(graph, source: int, target: int, limit: int) -> Optional[int]:
    """Hop distance from source to target if it is < ``limit``, else None."""
    if source == target:
        return 0
    hops = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        if hops[v] + 1 >= limit:
            continue
        for u, _w in graph.out_items(v):
            if u in hops:
                continue
            if u == target:
                return hops[v] + 1
            hops[u] = hops[v] + 1
            queue.append(u)
    return None
