"""Synthetic graph generators.

These are the dataset substitutes: the paper evaluates on web/social graphs
(power-law degree distributions, small diameter) and, for the pairwise query
literature generally, road networks (bounded degree, large diameter).  Each
generator here reproduces one of those topology classes at laptop scale.

All generators take an explicit ``seed`` and return a
:class:`~repro.graph.DynamicGraph`; weights default to 1.0 and can be
randomized with ``weight_range``.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph


def _weight_for(
    rng: random.Random, weight_range: Optional[Tuple[float, float]]
) -> float:
    if weight_range is None:
        return 1.0
    low, high = weight_range
    if low < 0 or high < low:
        raise ConfigError(f"invalid weight_range {weight_range!r}")
    return rng.uniform(low, high)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    directed: bool = False,
    weight_range: Optional[Tuple[float, float]] = None,
) -> DynamicGraph:
    """Uniform random graph with exactly ``num_edges`` distinct edges."""
    if num_vertices < 1:
        raise ConfigError("num_vertices must be >= 1")
    max_edges = num_vertices * (num_vertices - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise ConfigError(
            f"{num_edges} edges requested but at most {max_edges} are possible"
        )
    rng = random.Random(seed)
    graph = DynamicGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    seen = set()
    while len(seen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        key = (u, v) if directed or u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(u, v, _weight_for(rng, weight_range))
    return graph


def power_law_graph(
    num_vertices: int,
    edges_per_vertex: int = 4,
    seed: int = 0,
    directed: bool = False,
    weight_range: Optional[Tuple[float, float]] = None,
) -> DynamicGraph:
    """Preferential-attachment (Barabási–Albert style) power-law graph.

    This is the stand-in for social graphs such as LiveJournal or Twitter:
    heavy-tailed degrees with a few very high-degree hubs, which is exactly
    the regime where hub-based triangle-inequality bounds are tight.
    """
    if edges_per_vertex < 1:
        raise ConfigError("edges_per_vertex must be >= 1")
    if num_vertices <= edges_per_vertex:
        raise ConfigError("num_vertices must exceed edges_per_vertex")
    rng = random.Random(seed)
    graph = DynamicGraph(directed=directed)
    # Seed clique keeps early attachment well-defined.
    core = edges_per_vertex + 1
    for u in range(core):
        for v in range(u + 1, core):
            graph.add_edge(u, v, _weight_for(rng, weight_range))
    # Repeated-endpoints list implements preferential attachment in O(1).
    targets = []
    for u, v, _w in graph.edge_list():
        targets.append(u)
        targets.append(v)
    for v in range(core, num_vertices):
        chosen = set()
        while len(chosen) < edges_per_vertex:
            chosen.add(rng.choice(targets))
        for u in chosen:
            graph.add_edge(v, u, _weight_for(rng, weight_range))
            targets.append(u)
            targets.append(v)
    return graph


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    seed: int = 0,
    directed: bool = False,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    weight_range: Optional[Tuple[float, float]] = None,
) -> DynamicGraph:
    """Recursive-matrix (R-MAT / Graph500 style) skewed random graph.

    ``2**scale`` vertex slots, ``edge_factor * 2**scale`` edge draws (duplicate
    draws collapse, so the realized edge count is somewhat lower — as in the
    Graph500 generator).  The default probabilities are the Graph500 ones and
    yield a Twitter-like skew.
    """
    a, b, c, d = probabilities
    if not math.isclose(a + b + c + d, 1.0, abs_tol=1e-9):
        raise ConfigError("R-MAT probabilities must sum to 1")
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    rng = random.Random(seed)
    n = 1 << scale
    graph = DynamicGraph(directed=directed)
    for draw in range(edge_factor * n):
        u = v = 0
        for _level in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v:
            continue
        graph.add_edge(u, v, _weight_for(rng, weight_range))
    return graph


def grid_graph(
    rows: int,
    cols: int,
    seed: int = 0,
    directed: bool = False,
    weight_range: Optional[Tuple[float, float]] = (1.0, 10.0),
    diagonal_fraction: float = 0.0,
) -> DynamicGraph:
    """Road-network stand-in: a rows×cols lattice with random edge lengths.

    Bounded degree and Θ(rows+cols) diameter reproduce the topology that makes
    goal-directed pruning (lower bounds) shine relative to plain Dijkstra.
    ``diagonal_fraction`` optionally adds that fraction of cells a diagonal
    shortcut, roughening the lattice like real road grids.
    """
    if rows < 1 or cols < 1:
        raise ConfigError("rows and cols must be >= 1")
    if not 0.0 <= diagonal_fraction <= 1.0:
        raise ConfigError("diagonal_fraction must be within [0, 1]")
    rng = random.Random(seed)
    graph = DynamicGraph(directed=directed)

    def vid(r: int, col: int) -> int:
        return r * cols + col

    for r in range(rows):
        for col in range(cols):
            graph.add_vertex(vid(r, col))
            if col + 1 < cols:
                graph.add_edge(
                    vid(r, col), vid(r, col + 1), _weight_for(rng, weight_range)
                )
            if r + 1 < rows:
                graph.add_edge(
                    vid(r, col), vid(r + 1, col), _weight_for(rng, weight_range)
                )
            if (
                diagonal_fraction > 0.0
                and col + 1 < cols
                and r + 1 < rows
                and rng.random() < diagonal_fraction
            ):
                graph.add_edge(
                    vid(r, col), vid(r + 1, col + 1), _weight_for(rng, weight_range)
                )
    return graph


def small_world_graph(
    num_vertices: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
    weight_range: Optional[Tuple[float, float]] = None,
) -> DynamicGraph:
    """Watts–Strogatz small-world graph (always undirected).

    Used as a mid-point between the lattice and the power-law graphs: short
    paths but homogeneous degrees, so hub selection matters less and the
    bound-tightness ablation (E7) gets a contrasting topology.
    """
    k = nearest_neighbors
    if k % 2 != 0 or k < 2:
        raise ConfigError("nearest_neighbors must be a positive even number")
    if num_vertices <= k:
        raise ConfigError("num_vertices must exceed nearest_neighbors")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ConfigError("rewire_probability must be within [0, 1]")
    rng = random.Random(seed)
    graph = DynamicGraph(directed=False)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for v in range(num_vertices):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % num_vertices
            if rng.random() < rewire_probability:
                # Rewire the far endpoint to a uniform non-neighbor.
                for _attempt in range(num_vertices):
                    w = rng.randrange(num_vertices)
                    if w != v and not graph.has_edge(v, w):
                        u = w
                        break
            if not graph.has_edge(v, u) and v != u:
                graph.add_edge(v, u, _weight_for(rng, weight_range))
    return graph
