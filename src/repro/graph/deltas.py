"""Delta journals and structurally shared mappings.

This module is the substrate for O(Δ) snapshots and publishes: instead of
copying a whole adjacency (or a whole hub cost table) every time a version is
frozen, the new version is *derived* from the previous one plus the set of
keys that actually changed.

Two pieces:

* :class:`LayeredMapping` — an immutable mapping that shares an untouched
  ``base`` mapping with older versions and layers a small ``overrides`` dict
  (plus a ``deleted`` key set) on top.  Lookups stay O(1) because there are
  always exactly two levels: deriving version *n+1* from version *n* merges
  *n*'s override layer with the new changes rather than chaining.  When the
  accumulated override layer grows past a fraction of the base, the derive
  step compacts into a plain dict — so the per-derive cost is O(Δ) amortized
  and never degrades lookups.

* :class:`CostJournal` — a first-write-wins record of ``key → old value``
  kept by an incremental maintainer between freezes.  Draining it against the
  maintainer's current table yields the net ``(key, old, new)`` change list
  that :func:`derive_mapping` consumes.  A journal can be marked *full*
  (after a from-scratch rebuild) which tells the drainer that the delta is
  the whole table.

Both are value-type agnostic: the graph layer stores per-vertex adjacency
dicts as values, the streaming layer stores float costs.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple


class _Tombstone:
    """Sentinel marking a deleted key in a change map."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<TOMBSTONE>"


#: change-map value meaning "this key was removed"
TOMBSTONE = _Tombstone()

#: journal value meaning "this key was absent when first touched"
ABSENT = _Tombstone()


class LayeredMapping(Mapping):
    """Immutable two-level mapping: shared ``base`` + per-version overlay.

    ``deleted`` must only contain keys present in ``base`` and must be
    disjoint from ``overrides`` — :func:`derive_mapping` maintains both
    invariants; construct through it rather than directly.
    """

    __slots__ = ("_base", "_overrides", "_deleted", "_len")

    def __init__(
        self,
        base: Mapping,
        overrides: Dict[Any, Any],
        deleted: Set[Any],
    ) -> None:
        self._base = base
        self._overrides = overrides
        self._deleted = deleted
        extra = sum(1 for k in overrides if k not in base)
        self._len = len(base) - len(deleted) + extra

    # -- introspection (tests assert structural sharing through these) -------

    @property
    def base(self) -> Mapping:
        return self._base

    @property
    def overlay_size(self) -> int:
        """Number of keys carried by the overlay (overrides + tombstones)."""
        return len(self._overrides) + len(self._deleted)

    def overlay_keys(self) -> Iterator:
        """Iterate over the keys the overlay touches (overrides + tombstones).

        Two versions that share a ``base`` differ in at most the union of
        their overlay keys — the fact the dense serving plane exploits to
        derive a new per-hub cost row from the previous one in O(Δ) instead
        of re-materializing all |V| entries.
        """
        yield from self._overrides
        yield from self._deleted

    def __repr__(self) -> str:
        return (
            f"LayeredMapping(|base|={len(self._base)}, "
            f"overrides={len(self._overrides)}, deleted={len(self._deleted)})"
        )

    # -- mapping protocol ----------------------------------------------------

    def __getitem__(self, key):
        try:
            return self._overrides[key]
        except KeyError:
            pass
        if key in self._deleted:
            raise KeyError(key)
        return self._base[key]

    def get(self, key, default=None):
        try:
            return self._overrides[key]
        except KeyError:
            pass
        if key in self._deleted:
            return default
        base = self._base
        try:
            return base[key]
        except KeyError:
            return default

    def __contains__(self, key) -> bool:
        if key in self._overrides:
            return True
        if key in self._deleted:
            return False
        return key in self._base

    def __iter__(self) -> Iterator:
        overrides = self._overrides
        deleted = self._deleted
        for key in self._base:
            if key not in deleted and key not in overrides:
                yield key
        yield from overrides

    def __len__(self) -> int:
        return self._len

    def flatten(self) -> dict:
        """Materialize into a plain dict (O(n); used by compaction)."""
        flat = dict(self._base)
        for key in self._deleted:
            del flat[key]
        flat.update(self._overrides)
        return flat


def derive_mapping(
    prev: Mapping,
    changes: Mapping,
    min_compact: int = 64,
    compact_ratio: int = 4,
) -> Mapping:
    """New immutable mapping = ``prev`` + ``changes``, sharing structure.

    ``changes`` maps keys to their new values, or to :data:`TOMBSTONE` for
    removals.  ``prev`` may be a plain dict or a previously derived
    :class:`LayeredMapping`; either way it is never mutated, so older
    versions holding it stay valid.  Cost is O(cumulative changes since the
    underlying base was last compacted), independent of ``len(prev)`` —
    except for the compaction itself, which runs when the overlay exceeds
    ``max(min_compact, len(base) // compact_ratio)`` keys and amortizes to
    O(Δ) per derive.
    """
    if not changes:
        return prev
    if isinstance(prev, LayeredMapping):
        base = prev._base
        overrides = dict(prev._overrides)
        deleted = set(prev._deleted)
    else:
        base = prev
        overrides = {}
        deleted = set()
    for key, value in changes.items():
        if value is TOMBSTONE:
            overrides.pop(key, None)
            if key in base:
                deleted.add(key)
        else:
            overrides[key] = value
            deleted.discard(key)
    layered = LayeredMapping(base, overrides, deleted)
    if layered.overlay_size > max(min_compact, len(base) // compact_ratio):
        return layered.flatten()
    return layered


class CostJournal:
    """First-write-wins record of old values between two freezes.

    The owner calls :meth:`note` *before* every write/delete of a table key,
    :meth:`mark_full` whenever the whole table is recomputed wholesale, and
    :meth:`drain` at freeze time to obtain the net change list.
    """

    __slots__ = ("_old", "_full")

    def __init__(self) -> None:
        self._old: Dict[Any, Any] = {}
        self._full = False

    @property
    def full(self) -> bool:
        """True when the next drain must treat every key as changed."""
        return self._full

    def __len__(self) -> int:
        return len(self._old)

    def note(self, table: Mapping, key) -> None:
        """Record ``key``'s current value (or absence) if not yet journaled."""
        if self._full or key in self._old:
            return
        self._old[key] = table.get(key, ABSENT)

    def mark_full(self) -> None:
        """The table was rebuilt from scratch; per-key history is void."""
        self._full = True
        self._old.clear()

    def drain(
        self, current: Mapping
    ) -> Tuple[bool, List[Tuple[Any, Optional[Any], Optional[Any]]]]:
        """Reset the journal, returning ``(full, changes)``.

        ``full=True`` means the caller must take a complete copy of
        ``current``; the change list is then empty.  Otherwise ``changes``
        holds one ``(key, old, new)`` entry per *net* change since the last
        drain (no-op round trips are filtered out); ``old``/``new`` are None
        when the key was absent on that side.
        """
        if self._full:
            self._full = False
            self._old.clear()
            return True, []
        changes: List[Tuple[Any, Optional[Any], Optional[Any]]] = []
        for key, old in self._old.items():
            new = current.get(key, ABSENT)
            if new is ABSENT:
                if old is not ABSENT:
                    changes.append((key, old, None))
            elif old is ABSENT:
                changes.append((key, None, new))
            elif new != old:
                changes.append((key, old, new))
        self._old.clear()
        return False, changes
