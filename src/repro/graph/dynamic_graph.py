"""Mutable, versioned graph storage for evolving-graph workloads.

:class:`DynamicGraph` is the ingestion-side representation: a weighted
adjacency structure (directed or undirected) that tracks an *epoch* counter.
Every mutation advances the epoch, and :meth:`DynamicGraph.snapshot` freezes
the current state into an immutable :class:`~repro.graph.snapshot.GraphSnapshot`
that query engines and indexes run against.  This epoch/snapshot split is the
pure-Python stand-in for SGraph's concurrent ingest/query design: updates and
queries never race because queries only ever see published epochs.

Weights must be *strictly positive* finite floats: shortest-path semantics
need non-negative weights, and the incremental index maintainer additionally
relies on zero-weight cycles being impossible for its deletion repair to be
sound.  For unweighted use, leave the weight at the default 1.0.

Snapshots are copy-on-write: the graph keeps a dirty-vertex journal since
the last snapshot, every mutation clones a vertex's adjacency dict only the
first time that vertex is touched after a snapshot, and
:meth:`DynamicGraph.snapshot` derives the new snapshot from the previous
one's mapping plus the journal.  Freezing therefore costs O(vertices changed
since the last snapshot), not O(V+E), and calling ``snapshot()`` twice at
the same epoch returns the identical object.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, ItemsView, List, Optional, Tuple

from repro.errors import (
    EdgeNotFoundError,
    InvalidWeightError,
    VertexNotFoundError,
)
from repro.graph.deltas import TOMBSTONE, derive_mapping
from repro.graph.snapshot import GraphSnapshot

Edge = Tuple[int, int, float]


def _check_weight(weight: float) -> float:
    weight = float(weight)
    if math.isnan(weight) or math.isinf(weight) or weight <= 0.0:
        raise InvalidWeightError(
            f"edge weight must be a finite positive number, got {weight!r}"
        )
    return weight


class DynamicGraph:
    """A weighted graph that supports in-place edge/vertex churn.

    Parameters
    ----------
    directed:
        If True, ``add_edge(u, v)`` creates only the arc u→v and a reverse
        adjacency is maintained for backward traversal.  If False, edges are
        symmetric and stored once in each endpoint's adjacency.
    """

    def __init__(self, directed: bool = False) -> None:
        self._directed = directed
        self._out: Dict[int, Dict[int, float]] = {}
        # For undirected graphs _in aliases _out, so backward traversal is
        # uniform for the engines without duplicating storage.
        self._in: Dict[int, Dict[int, float]] = {} if directed else self._out
        self._num_edges = 0
        self._epoch = 0
        # Dirty-vertex journal: vertices whose adjacency dict was (re)bound
        # or mutated since the last snapshot.  A vertex NOT in the journal
        # may share its adjacency dict with the last snapshot, so mutators
        # clone-before-write on first touch (see _touch_out/_touch_in).
        self._dirty_out: set = set()
        self._dirty_in: set = self._dirty_out if not directed else set()
        self._last_snapshot: Optional[GraphSnapshot] = None

    # -- identity -----------------------------------------------------------

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def epoch(self) -> int:
        """Monotone version counter; advances on every successful mutation."""
        return self._epoch

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Edge count (each undirected edge counted once)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._out

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"DynamicGraph({kind}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, epoch={self._epoch})"
        )

    # -- copy-on-write plumbing ----------------------------------------------

    def _touch_out(self, vertex: int) -> None:
        """Mark ``vertex``'s forward adjacency dirty, cloning it first when
        it may be shared with the last snapshot."""
        if vertex not in self._dirty_out:
            if self._last_snapshot is not None:
                nbrs = self._out.get(vertex)
                if nbrs is not None:
                    self._out[vertex] = dict(nbrs)
            self._dirty_out.add(vertex)

    def _touch_in(self, vertex: int) -> None:
        if not self._directed:
            self._touch_out(vertex)
            return
        if vertex not in self._dirty_in:
            if self._last_snapshot is not None:
                nbrs = self._in.get(vertex)
                if nbrs is not None:
                    self._in[vertex] = dict(nbrs)
            self._dirty_in.add(vertex)

    # -- vertices -------------------------------------------------------------

    def add_vertex(self, vertex: int) -> bool:
        """Ensure ``vertex`` exists.  Returns True if it was newly created."""
        if vertex in self._out:
            return False
        self._out[vertex] = {}
        self._dirty_out.add(vertex)
        if self._directed:
            self._in[vertex] = {}
            self._dirty_in.add(vertex)
        self._epoch += 1
        return True

    def remove_vertex(self, vertex: int) -> None:
        """Remove ``vertex`` and every incident edge."""
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        for dst in list(self._out[vertex]):
            self._remove_edge_internal(vertex, dst)
        if self._directed:
            for src in list(self._in[vertex]):
                self._remove_edge_internal(src, vertex)
            del self._in[vertex]
            self._dirty_in.add(vertex)
        del self._out[vertex]
        self._dirty_out.add(vertex)
        self._epoch += 1

    def vertices(self) -> Iterator[int]:
        return iter(self._out)

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._out

    # -- edges ----------------------------------------------------------------

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        """Insert or update the edge ``src → dst``.

        Self-loops are stored but never affect shortest paths.  Returns True
        if a new edge was created, False if an existing edge's weight was
        updated.
        """
        weight = _check_weight(weight)
        self.add_vertex(src)
        self.add_vertex(dst)
        self._touch_out(src)
        created = dst not in self._out[src]
        self._out[src][dst] = weight
        if self._directed:
            self._touch_in(dst)
            self._in[dst][src] = weight
        elif src != dst:
            self._touch_out(dst)
            self._out[dst][src] = weight
        if created:
            self._num_edges += 1
        self._epoch += 1
        return created

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove the edge ``src → dst`` (or the undirected edge {src, dst})."""
        if src not in self._out or dst not in self._out[src]:
            raise EdgeNotFoundError(src, dst)
        self._remove_edge_internal(src, dst)
        self._epoch += 1

    def _remove_edge_internal(self, src: int, dst: int) -> None:
        self._touch_out(src)
        del self._out[src][dst]
        if self._directed:
            self._touch_in(dst)
            del self._in[dst][src]
        elif src != dst:
            self._touch_out(dst)
            del self._out[dst][src]
        self._num_edges -= 1

    def discard_edge(self, src: int, dst: int) -> bool:
        """Remove the edge if present.  Returns True if removed."""
        if src in self._out and dst in self._out[src]:
            self._remove_edge_internal(src, dst)
            self._epoch += 1
            return True
        return False

    def has_edge(self, src: int, dst: int) -> bool:
        return src in self._out and dst in self._out[src]

    def edge_weight(self, src: int, dst: int) -> float:
        try:
            return self._out[src][dst]
        except KeyError:
            raise EdgeNotFoundError(src, dst) from None

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(src, dst, weight)``.

        For undirected graphs each edge appears once, with ``src <= dst``
        except for the arbitrary orientation of edges whose endpoints compare
        equal only by insertion history (self-loops appear once).
        """
        if self._directed:
            for src, nbrs in self._out.items():
                for dst, weight in nbrs.items():
                    yield src, dst, weight
        else:
            for src, nbrs in self._out.items():
                for dst, weight in nbrs.items():
                    if src <= dst:
                        yield src, dst, weight

    # -- traversal protocol (shared with GraphSnapshot) -------------------------

    def out_items(self, vertex: int) -> ItemsView[int, float]:
        """Items view of ``{neighbor: weight}`` for forward traversal."""
        try:
            return self._out[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_items(self, vertex: int) -> ItemsView[int, float]:
        """Items view of ``{neighbor: weight}`` for backward traversal."""
        try:
            return self._in[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_degree(self, vertex: int) -> int:
        try:
            return len(self._out[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_degree(self, vertex: int) -> int:
        try:
            return len(self._in[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: int) -> int:
        """Total degree: out+in for directed graphs, neighbor count otherwise."""
        if self._directed:
            return self.out_degree(vertex) + self.in_degree(vertex)
        return self.out_degree(vertex)

    # -- bulk construction -------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int] | Edge], directed: bool = False
    ) -> "DynamicGraph":
        """Build a graph from ``(src, dst)`` or ``(src, dst, weight)`` tuples."""
        graph = cls(directed=directed)
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                graph.add_edge(src, dst)
            else:
                src, dst, weight = edge  # type: ignore[misc]
                graph.add_edge(src, dst, weight)
        return graph

    def copy(self) -> "DynamicGraph":
        """Deep copy with an independent epoch counter (reset to 0)."""
        clone = DynamicGraph(directed=self._directed)
        clone._out = {v: dict(nbrs) for v, nbrs in self._out.items()}
        if self._directed:
            clone._in = {v: dict(nbrs) for v, nbrs in self._in.items()}
        else:
            clone._in = clone._out
        clone._num_edges = self._num_edges
        return clone

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> GraphSnapshot:
        """Freeze the current state into an immutable snapshot.

        Memoized per epoch: calling this twice with no intervening mutation
        returns the same object.  Otherwise the new snapshot is derived from
        the previous one plus the dirty-vertex journal — unchanged vertices
        share their per-vertex adjacency dicts with the previous snapshot
        (copy-on-write keeps later mutations from leaking in), so the cost
        is O(vertices changed since the last snapshot).
        """
        prev = self._last_snapshot
        if prev is not None and prev.epoch == self._epoch:
            return prev
        if prev is None:
            # First snapshot: one top-level copy that shares the per-vertex
            # dicts; the copy-on-write discipline protects them from now on.
            out = dict(self._out)
            inn = dict(self._in) if self._directed else None
        else:
            out = derive_mapping(prev._out, self._journal_changes(
                self._dirty_out, self._out))
            if self._directed:
                inn = derive_mapping(prev._in, self._journal_changes(
                    self._dirty_in, self._in))
            else:
                inn = None
        snap = GraphSnapshot(
            out=out,
            inn=inn,
            directed=self._directed,
            num_edges=self._num_edges,
            epoch=self._epoch,
        )
        self._last_snapshot = snap
        self._dirty_out.clear()
        if self._directed:
            self._dirty_in.clear()
        return snap

    @staticmethod
    def _journal_changes(dirty: set, live: Dict[int, Dict[int, float]]) -> Dict:
        """Snapshot-derivation change map: share the live dict objects for
        changed vertices (the journal reset re-arms copy-on-write for them)
        and tombstone removed vertices."""
        changes: Dict = {}
        for v in dirty:
            nbrs = live.get(v)
            changes[v] = TOMBSTONE if nbrs is None else nbrs
        return changes

    def edge_list(self) -> List[Edge]:
        """Materialize :meth:`edges` as a list (handy for tests)."""
        return list(self.edges())
