"""Mutable, versioned graph storage for evolving-graph workloads.

:class:`DynamicGraph` is the ingestion-side representation: a weighted
adjacency structure (directed or undirected) that tracks an *epoch* counter.
Every mutation advances the epoch, and :meth:`DynamicGraph.snapshot` freezes
the current state into an immutable :class:`~repro.graph.snapshot.GraphSnapshot`
that query engines and indexes run against.  This epoch/snapshot split is the
pure-Python stand-in for SGraph's concurrent ingest/query design: updates and
queries never race because queries only ever see published epochs.

Weights must be *strictly positive* finite floats: shortest-path semantics
need non-negative weights, and the incremental index maintainer additionally
relies on zero-weight cycles being impossible for its deletion repair to be
sound.  For unweighted use, leave the weight at the default 1.0.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, ItemsView, List, Optional, Tuple

from repro.errors import (
    EdgeNotFoundError,
    InvalidWeightError,
    VertexNotFoundError,
)
from repro.graph.snapshot import GraphSnapshot

Edge = Tuple[int, int, float]


def _check_weight(weight: float) -> float:
    weight = float(weight)
    if math.isnan(weight) or math.isinf(weight) or weight <= 0.0:
        raise InvalidWeightError(
            f"edge weight must be a finite positive number, got {weight!r}"
        )
    return weight


class DynamicGraph:
    """A weighted graph that supports in-place edge/vertex churn.

    Parameters
    ----------
    directed:
        If True, ``add_edge(u, v)`` creates only the arc u→v and a reverse
        adjacency is maintained for backward traversal.  If False, edges are
        symmetric and stored once in each endpoint's adjacency.
    """

    def __init__(self, directed: bool = False) -> None:
        self._directed = directed
        self._out: Dict[int, Dict[int, float]] = {}
        # For undirected graphs _in aliases _out, so backward traversal is
        # uniform for the engines without duplicating storage.
        self._in: Dict[int, Dict[int, float]] = {} if directed else self._out
        self._num_edges = 0
        self._epoch = 0

    # -- identity -----------------------------------------------------------

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def epoch(self) -> int:
        """Monotone version counter; advances on every successful mutation."""
        return self._epoch

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Edge count (each undirected edge counted once)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._out

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"DynamicGraph({kind}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, epoch={self._epoch})"
        )

    # -- vertices -------------------------------------------------------------

    def add_vertex(self, vertex: int) -> bool:
        """Ensure ``vertex`` exists.  Returns True if it was newly created."""
        if vertex in self._out:
            return False
        self._out[vertex] = {}
        if self._directed:
            self._in[vertex] = {}
        self._epoch += 1
        return True

    def remove_vertex(self, vertex: int) -> None:
        """Remove ``vertex`` and every incident edge."""
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        for dst in list(self._out[vertex]):
            self._remove_edge_internal(vertex, dst)
        if self._directed:
            for src in list(self._in[vertex]):
                self._remove_edge_internal(src, vertex)
            del self._in[vertex]
        del self._out[vertex]
        self._epoch += 1

    def vertices(self) -> Iterator[int]:
        return iter(self._out)

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._out

    # -- edges ----------------------------------------------------------------

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        """Insert or update the edge ``src → dst``.

        Self-loops are stored but never affect shortest paths.  Returns True
        if a new edge was created, False if an existing edge's weight was
        updated.
        """
        weight = _check_weight(weight)
        self.add_vertex(src)
        self.add_vertex(dst)
        created = dst not in self._out[src]
        self._out[src][dst] = weight
        if self._directed:
            self._in[dst][src] = weight
        elif src != dst:
            self._out[dst][src] = weight
        if created:
            self._num_edges += 1
        self._epoch += 1
        return created

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove the edge ``src → dst`` (or the undirected edge {src, dst})."""
        if src not in self._out or dst not in self._out[src]:
            raise EdgeNotFoundError(src, dst)
        self._remove_edge_internal(src, dst)
        self._epoch += 1

    def _remove_edge_internal(self, src: int, dst: int) -> None:
        del self._out[src][dst]
        if self._directed:
            del self._in[dst][src]
        elif src != dst:
            del self._out[dst][src]
        self._num_edges -= 1

    def discard_edge(self, src: int, dst: int) -> bool:
        """Remove the edge if present.  Returns True if removed."""
        if src in self._out and dst in self._out[src]:
            self._remove_edge_internal(src, dst)
            self._epoch += 1
            return True
        return False

    def has_edge(self, src: int, dst: int) -> bool:
        return src in self._out and dst in self._out[src]

    def edge_weight(self, src: int, dst: int) -> float:
        try:
            return self._out[src][dst]
        except KeyError:
            raise EdgeNotFoundError(src, dst) from None

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(src, dst, weight)``.

        For undirected graphs each edge appears once, with ``src <= dst``
        except for the arbitrary orientation of edges whose endpoints compare
        equal only by insertion history (self-loops appear once).
        """
        if self._directed:
            for src, nbrs in self._out.items():
                for dst, weight in nbrs.items():
                    yield src, dst, weight
        else:
            for src, nbrs in self._out.items():
                for dst, weight in nbrs.items():
                    if src <= dst:
                        yield src, dst, weight

    # -- traversal protocol (shared with GraphSnapshot) -------------------------

    def out_items(self, vertex: int) -> ItemsView[int, float]:
        """Items view of ``{neighbor: weight}`` for forward traversal."""
        try:
            return self._out[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_items(self, vertex: int) -> ItemsView[int, float]:
        """Items view of ``{neighbor: weight}`` for backward traversal."""
        try:
            return self._in[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_degree(self, vertex: int) -> int:
        try:
            return len(self._out[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_degree(self, vertex: int) -> int:
        try:
            return len(self._in[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: int) -> int:
        """Total degree: out+in for directed graphs, neighbor count otherwise."""
        if self._directed:
            return self.out_degree(vertex) + self.in_degree(vertex)
        return self.out_degree(vertex)

    # -- bulk construction -------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int] | Edge], directed: bool = False
    ) -> "DynamicGraph":
        """Build a graph from ``(src, dst)`` or ``(src, dst, weight)`` tuples."""
        graph = cls(directed=directed)
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                graph.add_edge(src, dst)
            else:
                src, dst, weight = edge  # type: ignore[misc]
                graph.add_edge(src, dst, weight)
        return graph

    def copy(self) -> "DynamicGraph":
        """Deep copy with an independent epoch counter (reset to 0)."""
        clone = DynamicGraph(directed=self._directed)
        clone._out = {v: dict(nbrs) for v, nbrs in self._out.items()}
        if self._directed:
            clone._in = {v: dict(nbrs) for v, nbrs in self._in.items()}
        else:
            clone._in = clone._out
        clone._num_edges = self._num_edges
        return clone

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> GraphSnapshot:
        """Freeze the current state into an immutable snapshot.

        The snapshot owns copies of the adjacency dicts, so later mutations
        of this graph never leak into published epochs.
        """
        out = {v: dict(nbrs) for v, nbrs in self._out.items()}
        if self._directed:
            inn: Optional[Dict[int, Dict[int, float]]] = {
                v: dict(nbrs) for v, nbrs in self._in.items()
            }
        else:
            inn = None
        return GraphSnapshot(
            out=out,
            inn=inn,
            directed=self._directed,
            num_edges=self._num_edges,
            epoch=self._epoch,
        )

    def edge_list(self) -> List[Edge]:
        """Materialize :meth:`edges` as a list (handy for tests)."""
        return list(self.edges())
