"""Classic graph algorithms used as substrates and test oracles.

* :func:`strongly_connected_components` — Tarjan's algorithm (iterative, so
  deep graphs don't blow the recursion limit);
* :func:`condensation` — the SCC quotient DAG;
* :class:`ReachabilityOracle` — exact directed reachability answered from
  the condensation's descendant sets.

The oracle is *static*: it reflects the graph at construction time and is
used (a) as the ground truth for the directed reachability tests and (b) as
a library utility for workloads that can tolerate snapshot-stale
reachability.  SGraph's own reachability stays the incrementally-maintained
bound mechanism; this module documents the trade explicitly rather than
pretending SCC maintenance under churn is easy.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import GraphError


def strongly_connected_components(graph) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative.

    Works on undirected graphs too (each connected component is one SCC,
    since the traversal protocol exposes symmetric arcs there).  Components
    are returned in reverse topological order of the condensation (standard
    Tarjan property).
    """
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in graph.vertices():
        if root in index_of:
            continue
        # Each frame is (vertex, iterator over successors).
        work = [(root, iter([u for u, _w in graph.out_items(root)]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, successors = work[-1]
            advanced = False
            for u in successors:
                if u not in index_of:
                    index_of[u] = lowlink[u] = counter
                    counter += 1
                    stack.append(u)
                    on_stack.add(u)
                    work.append(
                        (u, iter([x for x, _w in graph.out_items(u)]))
                    )
                    advanced = True
                    break
                if u in on_stack:
                    if index_of[u] < lowlink[v]:
                        lowlink[v] = index_of[u]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


def condensation(graph) -> Tuple[Dict[int, int], List[Set[int]]]:
    """SCC quotient DAG.

    Returns ``(component_of, dag_successors)``: a map from vertex to its
    component id, and per-component successor-id sets (self-loops removed).
    Component ids follow Tarjan emission order (reverse topological).
    """
    components = strongly_connected_components(graph)
    component_of: Dict[int, int] = {}
    for cid, members in enumerate(components):
        for v in members:
            component_of[v] = cid
    successors: List[Set[int]] = [set() for _ in components]
    for v in graph.vertices():
        cv = component_of[v]
        for u, _w in graph.out_items(v):
            cu = component_of[u]
            if cu != cv:
                successors[cv].add(cu)
    return component_of, successors


class ReachabilityOracle:
    """Exact directed reachability from the condensation's closure.

    Construction is O(V + E + C²/word) via descendant bitsets merged in
    topological order; queries are O(1).  Static — rebuild after mutations
    (the :attr:`epoch` records what it reflects, when available).
    """

    def __init__(self, graph) -> None:
        self._component_of, successors = condensation(graph)
        self.epoch = getattr(graph, "epoch", None)
        n = len(successors)
        # Tarjan emits components in reverse topological order, so plain
        # iteration visits every successor before its predecessors.
        descendants: List[int] = [0] * n  # bitsets as ints
        for cid in range(n):
            mask = 1 << cid
            for nxt in successors[cid]:
                mask |= descendants[nxt]
            descendants[cid] = mask
        self._descendants = descendants

    @property
    def num_components(self) -> int:
        return len(self._descendants)

    def component(self, vertex: int) -> int:
        try:
            return self._component_of[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex} not known to the oracle") from None

    def reachable(self, source: int, target: int) -> bool:
        """Whether a directed source→target path existed at construction."""
        cs = self.component(source)
        ct = self.component(target)
        return bool(self._descendants[cs] & (1 << ct))

    def same_component(self, a: int, b: int) -> bool:
        return self.component(a) == self.component(b)
