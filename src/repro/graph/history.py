"""Epoch history: an append-only update log with checkpointed time travel.

Evolving-graph analyses often need the graph *as it was*: auditing a past
query answer, re-running an experiment window, or feeding E8-style
studies.  :class:`HistoryGraph` wraps a :class:`~repro.graph.DynamicGraph`,
records every mutation in an append-only log, takes a full checkpoint every
``checkpoint_interval`` operations, and reconstructs the state at any past
epoch by copying the nearest checkpoint at or before it and replaying the
log forward — O(interval) worst-case replay instead of O(history).

This is storage-level time travel (any epoch, graph only), complementing
:class:`~repro.streaming.versioning.VersionedStore` (published epochs only,
but with frozen *indexes* so queries are fast).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Tuple

from repro.errors import GraphError, SnapshotError
from repro.graph.dynamic_graph import DynamicGraph
from repro.streaming.update import EdgeUpdate, UpdateKind


class OpKind(Enum):
    ADD_VERTEX = "add_vertex"
    SET_EDGE = "set_edge"       # insert or weight change
    DEL_EDGE = "del_edge"
    DEL_VERTEX = "del_vertex"


@dataclass(frozen=True)
class LogEntry:
    """One logged mutation and the epoch the graph reached after it."""

    epoch: int
    op: OpKind
    u: int
    v: Optional[int] = None
    weight: Optional[float] = None


class HistoryGraph:
    """A DynamicGraph with full mutation history and ``state_at``.

    All mutations must go through this wrapper; mutating the underlying
    graph directly would silently desynchronize the log.
    """

    def __init__(
        self, directed: bool = False, checkpoint_interval: int = 256
    ) -> None:
        if checkpoint_interval < 1:
            raise GraphError("checkpoint_interval must be >= 1")
        self._graph = DynamicGraph(directed=directed)
        self._log: List[LogEntry] = []
        self._interval = checkpoint_interval
        self._ops_since_checkpoint = 0
        # Checkpoints: (epoch, graph copy, log length at capture).
        self._checkpoints: List[Tuple[int, DynamicGraph, int]] = [
            (self._graph.epoch, self._graph.copy(), 0)
        ]

    # -- introspection -----------------------------------------------------------

    @property
    def current(self) -> DynamicGraph:
        """The live graph (read-only by convention)."""
        return self._graph

    @property
    def epoch(self) -> int:
        return self._graph.epoch

    @property
    def num_logged_ops(self) -> int:
        return len(self._log)

    @property
    def num_checkpoints(self) -> int:
        return len(self._checkpoints)

    def epochs(self) -> List[int]:
        """Every epoch reached by a logged operation (ascending)."""
        return [entry.epoch for entry in self._log]

    # -- mutation ----------------------------------------------------------------

    def _record(self, op: OpKind, u: int, v: Optional[int] = None,
                weight: Optional[float] = None) -> None:
        self._log.append(
            LogEntry(epoch=self._graph.epoch, op=op, u=u, v=v, weight=weight)
        )
        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint >= self._interval:
            self._checkpoints.append(
                (self._graph.epoch, self._graph.copy(), len(self._log))
            )
            self._ops_since_checkpoint = 0

    def add_vertex(self, vertex: int) -> bool:
        created = self._graph.add_vertex(vertex)
        if created:
            self._record(OpKind.ADD_VERTEX, vertex)
        return created

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        if (self._graph.has_edge(src, dst)
                and self._graph.edge_weight(src, dst) == weight):
            return
        self._graph.add_edge(src, dst, weight)
        self._record(OpKind.SET_EDGE, src, dst, weight)

    def remove_edge(self, src: int, dst: int) -> None:
        self._graph.remove_edge(src, dst)
        self._record(OpKind.DEL_EDGE, src, dst)

    def discard_edge(self, src: int, dst: int) -> bool:
        if not self._graph.has_edge(src, dst):
            return False
        self.remove_edge(src, dst)
        return True

    def remove_vertex(self, vertex: int) -> None:
        self._graph.remove_vertex(vertex)
        self._record(OpKind.DEL_VERTEX, vertex)

    def apply_update(self, update: EdgeUpdate) -> None:
        if update.kind is UpdateKind.INSERT:
            self.add_edge(update.src, update.dst, update.weight)
        else:
            self.discard_edge(update.src, update.dst)

    def apply(self, updates: Iterable[EdgeUpdate]) -> int:
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    # -- time travel ---------------------------------------------------------------

    def state_at(self, epoch: int) -> DynamicGraph:
        """Reconstruct the graph as of ``epoch``.

        ``epoch`` may be any value ≥ the initial epoch; the state returned
        is the one produced by the last operation whose post-epoch is ≤ it
        (i.e. epochs between mutations resolve to the preceding state).
        """
        initial_epoch = self._checkpoints[0][0]
        if epoch < initial_epoch:
            raise SnapshotError(
                f"epoch {epoch} predates recorded history (starts at "
                f"{initial_epoch})"
            )
        # Nearest checkpoint at or before the target.
        checkpoint_epochs = [c[0] for c in self._checkpoints]
        idx = bisect.bisect_right(checkpoint_epochs, epoch) - 1
        _cp_epoch, base, log_pos = self._checkpoints[idx]
        state = base.copy()
        for entry in self._log[log_pos:]:
            if entry.epoch > epoch:
                break
            self._replay(state, entry)
        return state

    @staticmethod
    def _replay(state: DynamicGraph, entry: LogEntry) -> None:
        if entry.op is OpKind.ADD_VERTEX:
            state.add_vertex(entry.u)
        elif entry.op is OpKind.SET_EDGE:
            assert entry.v is not None and entry.weight is not None
            state.add_edge(entry.u, entry.v, entry.weight)
        elif entry.op is OpKind.DEL_EDGE:
            assert entry.v is not None
            state.discard_edge(entry.u, entry.v)
        else:
            state.remove_vertex(entry.u)

    def __repr__(self) -> str:
        return (
            f"HistoryGraph(epoch={self.epoch}, ops={self.num_logged_ops}, "
            f"checkpoints={self.num_checkpoints})"
        )
