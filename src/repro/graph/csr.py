"""Compressed-sparse-row materialization of a snapshot.

The hub index rebuilds run full single-source shortest-path passes; doing
those over ``dict``-of-``dict`` adjacency is noticeably slower than over
flat numpy arrays.  :class:`CSRGraph` is a read-only array view of one
snapshot with a dense internal vertex numbering plus the id mapping needed to
translate back to caller-visible vertex ids.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import VertexNotFoundError
from repro.graph.snapshot import GraphSnapshot


class CSRGraph:
    """Read-only CSR arrays for one graph snapshot.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays over the *dense* vertex numbering for forward
        (out-) traversal.
    rev_indptr, rev_indices, rev_weights:
        The same for backward traversal.  For undirected graphs these alias
        the forward arrays.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "rev_indptr",
        "rev_indices",
        "rev_weights",
        "_ids",
        "_dense",
        "directed",
        "epoch",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        rev_indptr: np.ndarray,
        rev_indices: np.ndarray,
        rev_weights: np.ndarray,
        vertex_ids: Sequence[int],
        directed: bool,
        epoch: int,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.rev_indptr = rev_indptr
        self.rev_indices = rev_indices
        self.rev_weights = rev_weights
        self._ids = list(vertex_ids)
        self._dense: Dict[int, int] = {v: i for i, v in enumerate(self._ids)}
        self.directed = directed
        self.epoch = epoch

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: GraphSnapshot) -> "CSRGraph":
        ids = sorted(snapshot.vertices())
        dense = {v: i for i, v in enumerate(ids)}
        n = len(ids)

        def build(items_of) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            indptr = np.zeros(n + 1, dtype=np.int64)
            rows: List[List[Tuple[int, float]]] = []
            total = 0
            for i, v in enumerate(ids):
                row = [(dense[u], w) for u, w in items_of(v)]
                row.sort()
                rows.append(row)
                total += len(row)
                indptr[i + 1] = total
            indices = np.empty(total, dtype=np.int64)
            weights = np.empty(total, dtype=np.float64)
            pos = 0
            for row in rows:
                for u, w in row:
                    indices[pos] = u
                    weights[pos] = w
                    pos += 1
            return indptr, indices, weights

        indptr, indices, weights = build(snapshot.out_items)
        if snapshot.directed:
            rev_indptr, rev_indices, rev_weights = build(snapshot.in_items)
        else:
            rev_indptr, rev_indices, rev_weights = indptr, indices, weights
        return cls(
            indptr=indptr,
            indices=indices,
            weights=weights,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            rev_weights=rev_weights,
            vertex_ids=ids,
            directed=snapshot.directed,
            epoch=snapshot.epoch,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (undirected edges count twice, minus loops)."""
        return int(self.indices.shape[0])

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, |V|={self.num_vertices}, arcs={self.num_arcs})"

    # -- id mapping ---------------------------------------------------------------

    def dense_id(self, vertex: int) -> int:
        """Map a caller-visible vertex id to its dense CSR index."""
        try:
            return self._dense[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex_id(self, dense: int) -> int:
        """Map a dense CSR index back to the caller-visible vertex id."""
        return self._ids[dense]

    def vertex_ids(self) -> List[int]:
        return list(self._ids)

    # -- traversal ---------------------------------------------------------------

    def out_arcs(self, dense: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(dense_neighbor, weight)`` for forward arcs of ``dense``."""
        start, stop = self.indptr[dense], self.indptr[dense + 1]
        for k in range(start, stop):
            yield int(self.indices[k]), float(self.weights[k])

    def in_arcs(self, dense: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(dense_neighbor, weight)`` for backward arcs of ``dense``."""
        start, stop = self.rev_indptr[dense], self.rev_indptr[dense + 1]
        for k in range(start, stop):
            yield int(self.rev_indices[k]), float(self.rev_weights[k])

    def sssp(self, source: int, backward: bool = False) -> np.ndarray:
        """Dijkstra distances from ``source`` (a caller-visible id).

        Returns a float64 array indexed by dense id; unreachable vertices
        hold ``inf``.  Set ``backward=True`` to compute distances *to*
        ``source`` along arc directions (used for directed hub indexes).
        """
        import heapq

        n = self.num_vertices
        dist = np.full(n, np.inf, dtype=np.float64)
        src = self.dense_id(source)
        dist[src] = 0.0
        indptr = self.rev_indptr if backward else self.indptr
        indices = self.rev_indices if backward else self.indices
        weights = self.rev_weights if backward else self.weights
        heap: List[Tuple[float, int]] = [(0.0, src)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            start, stop = indptr[v], indptr[v + 1]
            for k in range(start, stop):
                u = int(indices[k])
                nd = d + weights[k]
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist
