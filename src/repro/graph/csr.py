"""Compressed-sparse-row materialization of a snapshot.

The hub index rebuilds run full single-source shortest-path passes; doing
those over ``dict``-of-``dict`` adjacency is noticeably slower than over
flat numpy arrays.  :class:`CSRGraph` is a read-only array view of one
snapshot with a dense internal vertex numbering plus the id mapping needed to
translate back to caller-visible vertex ids.

Beyond rebuilds, the CSR is the *traversal substrate of the dense serving
plane*: the pruned bidirectional engine walks :meth:`out_lists` /
:meth:`in_lists` (cached Python-list views of the arrays, the fastest
per-element access pure Python offers), bound evaluation slices rows with
:meth:`out_slice` / :meth:`in_slice`, and frozen hub tables are laid out
over the same dense numbering.  Vertices with no out- (or in-) arcs —
including fully isolated vertices — occupy an empty row, so every vertex of
the snapshot is addressable.

When the vertex set has not changed between epochs, :meth:`from_snapshot`
can *reuse* the previous CSR's id mapping (pass ``prev=``): the new CSR then
shares the identical ``ids`` list object, which downstream consumers (dense
hub tables) use as an O(1) identity test for "same id space" — the hook that
keeps dense-table derivation delta-proportional.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, VertexNotFoundError
from repro.graph.snapshot import GraphSnapshot


class CSRGraph:
    """Read-only CSR arrays for one graph snapshot.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays over the *dense* vertex numbering for forward
        (out-) traversal.
    rev_indptr, rev_indices, rev_weights:
        The same for backward traversal.  For undirected graphs these alias
        the forward arrays.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "rev_indptr",
        "rev_indices",
        "rev_weights",
        "_ids",
        "_dense",
        "directed",
        "epoch",
        "_unit",
        "_out_lists",
        "_in_lists",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        rev_indptr: np.ndarray,
        rev_indices: np.ndarray,
        rev_weights: np.ndarray,
        vertex_ids: Sequence[int],
        directed: bool,
        epoch: int,
        dense_map: Optional[Dict[int, int]] = None,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.rev_indptr = rev_indptr
        self.rev_indices = rev_indices
        self.rev_weights = rev_weights
        # Adopt a list by reference so id-space identity survives (see
        # module docstring); other sequences are copied.
        self._ids = vertex_ids if isinstance(vertex_ids, list) else list(vertex_ids)
        self._dense: Dict[int, int] = (
            dense_map if dense_map is not None
            else {v: i for i, v in enumerate(self._ids)}
        )
        self.directed = directed
        self.epoch = epoch
        self._unit: Optional["CSRGraph"] = None
        self._out_lists: Optional[Tuple[list, list, list]] = None
        self._in_lists: Optional[Tuple[list, list, list]] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls, snapshot: GraphSnapshot, prev: Optional["CSRGraph"] = None
    ) -> "CSRGraph":
        ids: Optional[List[int]] = None
        dense: Optional[Dict[int, int]] = None
        if prev is not None and prev.num_vertices == snapshot.num_vertices:
            prev_ids = prev._ids
            if all(v in snapshot for v in prev_ids):
                # Same vertex set: share the id space by reference so
                # ``same_id_space`` is an O(1) identity test downstream.
                ids = prev_ids
                dense = prev._dense
        if ids is None:
            ids = sorted(snapshot.vertices())
            dense = {v: i for i, v in enumerate(ids)}
        n = len(ids)

        def build(items_of) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            indptr = np.zeros(n + 1, dtype=np.int64)
            rows: List[List[Tuple[int, float]]] = []
            total = 0
            for i, v in enumerate(ids):
                row = [(dense[u], w) for u, w in items_of(v)]
                row.sort()
                rows.append(row)
                total += len(row)
                indptr[i + 1] = total
            indices = np.empty(total, dtype=np.int64)
            weights = np.empty(total, dtype=np.float64)
            pos = 0
            for row in rows:
                for u, w in row:
                    indices[pos] = u
                    weights[pos] = w
                    pos += 1
            return indptr, indices, weights

        indptr, indices, weights = build(snapshot.out_items)
        if snapshot.directed:
            rev_indptr, rev_indices, rev_weights = build(snapshot.in_items)
        else:
            rev_indptr, rev_indices, rev_weights = indptr, indices, weights
        return cls(
            indptr=indptr,
            indices=indices,
            weights=weights,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            rev_weights=rev_weights,
            vertex_ids=ids,
            directed=snapshot.directed,
            epoch=snapshot.epoch,
            dense_map=dense,
        )

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        vertex_ids: Sequence[int],
        directed: bool,
        epoch: int,
        rev_indptr: Optional[np.ndarray] = None,
        rev_indices: Optional[np.ndarray] = None,
        rev_weights: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """Adopt prebuilt CSR arrays by reference (no validation pass).

        The shared-memory attach path: arrays are zero-copy views into a
        mapped segment, so construction stays O(#buffers).  Undirected
        callers omit the ``rev_*`` triple (backward aliases forward);
        directed callers must supply all three.
        """
        if directed:
            if rev_indptr is None or rev_indices is None or rev_weights is None:
                raise ConfigError(
                    "directed CSR adoption needs rev_indptr, rev_indices "
                    "and rev_weights"
                )
        else:
            rev_indptr, rev_indices, rev_weights = indptr, indices, weights
        return cls(
            indptr=indptr,
            indices=indices,
            weights=weights,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            rev_weights=rev_weights,
            vertex_ids=vertex_ids,
            directed=directed,
            epoch=epoch,
        )

    @property
    def nbytes(self) -> int:
        """Array payload bytes (forward plus any distinct backward arrays)."""
        total = self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes
        if self.rev_indptr is not self.indptr:
            total += (self.rev_indptr.nbytes + self.rev_indices.nbytes
                      + self.rev_weights.nbytes)
        return total

    def with_unit_weights(self) -> "CSRGraph":
        """A CSR over the same topology with every arc weight 1.0.

        Shares the structure arrays and the id space with this CSR (only the
        weight arrays are fresh), so the hop-metric serving plane costs O(E)
        floats, not a rebuild.  Memoized.
        """
        if self._unit is None:
            ones = np.ones_like(self.weights)
            if self.directed:
                rev_ones = np.ones_like(self.rev_weights)
                unit = CSRGraph(
                    self.indptr, self.indices, ones,
                    self.rev_indptr, self.rev_indices, rev_ones,
                    vertex_ids=self._ids, directed=True, epoch=self.epoch,
                    dense_map=self._dense,
                )
            else:
                unit = CSRGraph(
                    self.indptr, self.indices, ones,
                    self.indptr, self.indices, ones,
                    vertex_ids=self._ids, directed=False, epoch=self.epoch,
                    dense_map=self._dense,
                )
            self._unit = unit
        return self._unit

    # -- identity ---------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (undirected edges count twice, minus loops)."""
        return int(self.indices.shape[0])

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, |V|={self.num_vertices}, arcs={self.num_arcs})"

    # -- id mapping ---------------------------------------------------------------

    @property
    def ids(self) -> List[int]:
        """The shared dense→vertex id list.  Treat as immutable.

        Exposed (rather than copied) so consumers can identity-compare id
        spaces across epochs; see :meth:`same_id_space`.
        """
        return self._ids

    @property
    def dense_map(self) -> Dict[int, int]:
        """The shared vertex→dense id dict.  Treat as immutable."""
        return self._dense

    def same_id_space(self, other: "CSRGraph") -> bool:
        """O(1): True when both CSRs share the identical id mapping object.

        Guaranteed after :meth:`from_snapshot` with ``prev=other`` found the
        vertex set unchanged (and for :meth:`with_unit_weights` variants).
        A False result does not prove the id spaces differ — only that they
        are not known-shared and per-id translation must be used.
        """
        return self._ids is other._ids

    def dense_id(self, vertex: int) -> int:
        """Map a caller-visible vertex id to its dense CSR index."""
        try:
            return self._dense[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex_id(self, dense: int) -> int:
        """Map a dense CSR index back to the caller-visible vertex id."""
        return self._ids[dense]

    def vertex_ids(self) -> List[int]:
        return list(self._ids)

    def to_dense(self, vertices: Iterable[int]) -> List[int]:
        """Translate caller-visible vertex ids to dense ids, in order."""
        return [self.dense_id(v) for v in vertices]

    def to_ids(self, dense_ids: Iterable[int]) -> List[int]:
        """Translate dense ids back to caller-visible vertex ids, in order."""
        ids = self._ids
        return [ids[d] for d in dense_ids]

    # -- traversal ---------------------------------------------------------------

    def out_arcs(self, dense: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(dense_neighbor, weight)`` for forward arcs of ``dense``."""
        start, stop = self.indptr[dense], self.indptr[dense + 1]
        for k in range(start, stop):
            yield int(self.indices[k]), float(self.weights[k])

    def in_arcs(self, dense: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(dense_neighbor, weight)`` for backward arcs of ``dense``."""
        start, stop = self.rev_indptr[dense], self.rev_indptr[dense + 1]
        for k in range(start, stop):
            yield int(self.rev_indices[k]), float(self.rev_weights[k])

    def out_slice(self, dense: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbors, weights)`` array views of one forward row.

        Empty arrays for vertices with no out-arcs (isolated vertices
        included) — never an error.
        """
        start, stop = self.indptr[dense], self.indptr[dense + 1]
        return self.indices[start:stop], self.weights[start:stop]

    def in_slice(self, dense: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbors, weights)`` array views of one backward row."""
        start, stop = self.rev_indptr[dense], self.rev_indptr[dense + 1]
        return self.rev_indices[start:stop], self.rev_weights[start:stop]

    def out_degree(self, dense: int) -> int:
        return int(self.indptr[dense + 1] - self.indptr[dense])

    def in_degree(self, dense: int) -> int:
        return int(self.rev_indptr[dense + 1] - self.rev_indptr[dense])

    def out_lists(self) -> Tuple[list, list, list]:
        """``(indptr, indices, weights)`` as cached plain Python lists.

        Per-element access on a Python list is several times faster than
        numpy scalar indexing, which makes these the hot-loop view for the
        dense search path.  Built once per CSR (O(V+E)), then shared.
        """
        if self._out_lists is None:
            self._out_lists = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist(),
            )
        return self._out_lists

    def in_lists(self) -> Tuple[list, list, list]:
        """Backward twin of :meth:`out_lists` (aliases it when undirected)."""
        if self._in_lists is None:
            if self.rev_indptr is self.indptr and self.rev_weights is self.weights:
                self._in_lists = self.out_lists()
            else:
                self._in_lists = (
                    self.rev_indptr.tolist(),
                    self.rev_indices.tolist(),
                    self.rev_weights.tolist(),
                )
        return self._in_lists

    def sssp(self, source: int, backward: bool = False) -> np.ndarray:
        """Dijkstra distances from ``source`` (a caller-visible id).

        Returns a float64 array indexed by dense id; unreachable vertices
        hold ``inf``.  Set ``backward=True`` to compute distances *to*
        ``source`` along arc directions (used for directed hub indexes).
        """
        import heapq

        n = self.num_vertices
        dist = np.full(n, np.inf, dtype=np.float64)
        src = self.dense_id(source)
        dist[src] = 0.0
        indptr, indices, weights = (
            self.in_lists() if backward else self.out_lists()
        )
        heap: List[Tuple[float, int]] = [(0.0, src)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                nd = d + weights[k]
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist
