"""Graph views: alternative weightings over the same adjacency.

:class:`UnitWeightView` presents every edge with weight 1.0 so that the
distance machinery (engine, hub index, incremental maintenance) answers
*hop-count* queries without duplicating the graph.  The view follows the
underlying graph live — mutations show through immediately.
"""

from __future__ import annotations

from typing import Iterator, Tuple


class UnitWeightView:
    """Read-only traversal-protocol adapter that reports all weights as 1.0."""

    __slots__ = ("_graph",)

    def __init__(self, graph) -> None:
        self._graph = graph

    @property
    def base(self):
        """The underlying graph."""
        return self._graph

    @property
    def directed(self) -> bool:
        return self._graph.directed

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    def __len__(self) -> int:
        return len(self._graph)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._graph

    def __repr__(self) -> str:
        return f"UnitWeightView({self._graph!r})"

    def vertices(self) -> Iterator[int]:
        return self._graph.vertices()

    def has_vertex(self, vertex: int) -> bool:
        return self._graph.has_vertex(vertex)

    def has_edge(self, src: int, dst: int) -> bool:
        return self._graph.has_edge(src, dst)

    def edge_weight(self, src: int, dst: int) -> float:
        # Raises the underlying errors for missing vertices/edges.
        self._graph.edge_weight(src, dst)
        return 1.0

    def out_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        for u, _w in self._graph.out_items(vertex):
            yield u, 1.0

    def in_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        for u, _w in self._graph.in_items(vertex):
            yield u, 1.0

    def out_degree(self, vertex: int) -> int:
        return self._graph.out_degree(vertex)

    def in_degree(self, vertex: int) -> int:
        return self._graph.in_degree(vertex)

    def degree(self, vertex: int) -> int:
        return self._graph.degree(vertex)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for src, dst, _w in self._graph.edges():
            yield src, dst, 1.0
