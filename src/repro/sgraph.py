"""The SGraph facade: evolving graph + hub indexes + pruned query engines.

This is the library's front door.  An :class:`SGraph` owns one
:class:`~repro.graph.DynamicGraph`, builds a hub index per configured query
family (weighted distance, hop count, bottleneck capacity), keeps every
index incrementally in sync as edges churn, and answers pairwise queries
through the pruned bidirectional engine.

Typical use::

    from repro import SGraph, SGraphConfig

    sg = SGraph.from_edges([(0, 1, 2.0), (1, 2, 1.0)],
                           config=SGraphConfig(num_hubs=4))
    sg.add_edge(2, 3, 5.0)
    result = sg.distance(0, 3)
    result.value          # 8.0
    result.stats.activations

The facade guarantees the mutate-then-notify ordering the incremental
maintainers need, translates weight changes into delete+insert notifications,
and rebuilds indexes when a hub vertex is removed.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cache import QueryCache
from repro.core.config import SGraphConfig
from repro.core.engine import (
    PairwiseEngine,
    expand_from_graph,
)
from repro.core.hub_index import DensePlane, HubIndex
from repro.core.workspace import SearchWorkspace
from repro.core.pairwise import ManyQueryResult, QueryKind, QueryResult
from repro.core.semiring import (
    BOTTLENECK_CAPACITY,
    RELIABILITY_PRODUCT,
    SHORTEST_DISTANCE,
)
from repro.errors import ConfigError, QueryError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.snapshot import GraphSnapshot
from repro.graph.views import UnitWeightView
from repro.streaming.update import EdgeUpdate, UpdateKind

#: ``backend="auto"`` crossover: the live facade switches a min-plus family
#: to the dense plane once the workload looks query-heavy — at least this
#: many queries per update interval (EMA), or this many queries since the
#: last mutation.  Below the threshold the per-epoch dense rebuild would
#: cost more than it saves, so auto stays on the dict path.
AUTO_DENSE_QUERY_RATIO = 4.0
#: EMA fold weight for the queries-per-interval estimate: each mutation
#: closes an interval and folds its query count in at this weight.
AUTO_EMA_WEIGHT = 0.5
#: clamp range for a *probed* crossover ratio (``auto_probe=True``): below
#: 1 a single query would already repay the rebuild, above 256 the probe is
#: telling us dense never pays on this workload size — either way the
#: measurement is out of the regime the EMA heuristic operates in.
AUTO_PROBE_MIN_RATIO = 1.0
AUTO_PROBE_MAX_RATIO = 256.0
#: sample queries per plane in the one-shot startup probe
AUTO_PROBE_SAMPLES = 8


class SGraph:
    """Sub-second pairwise queries over an evolving graph.

    Parameters
    ----------
    graph:
        An existing :class:`DynamicGraph` to adopt (mutations must go through
        this facade afterwards), or None for a fresh empty graph.
    directed:
        Used only when ``graph`` is None.
    config:
        Engine knobs; see :class:`SGraphConfig`.
    """

    def __init__(
        self,
        graph: Optional[DynamicGraph] = None,
        directed: bool = False,
        config: Optional[SGraphConfig] = None,
    ) -> None:
        self._graph = graph if graph is not None else DynamicGraph(directed=directed)
        self._config = config or SGraphConfig()
        self._indexes: Dict[str, HubIndex] = {}
        self._engines: Dict[str, PairwiseEngine] = {}
        self._unit_view = UnitWeightView(self._graph)
        self._hubs: set = set()
        self._cache = (QueryCache(self._config.cache_size)
                       if self._config.cache_size > 0 else None)
        # backend="dense" serving state: per-family (epoch, engine) pairs
        # built at the first query after a mutation, plus the plane chain
        # that lets each epoch's dense tables derive from the previous one.
        self._dense_serving: Dict[str, Tuple[int, PairwiseEngine]] = {}
        self._dense_planes: Dict[str, DensePlane] = {}
        # One search workspace per dense-served family, passed into each
        # epoch's fresh engine: the O(V) search state survives epoch
        # handoff, so steady-state queries only pay the sparse reset.
        self._workspaces: Dict[str, SearchWorkspace] = {}
        # backend="auto" crossover state: queries observed since the last
        # mutation, and an EMA of queries-per-update-interval (folded each
        # time the epoch moves; see _auto_fold).
        self._auto_epoch: int = self._graph.epoch
        self._auto_queries: int = 0
        self._auto_ema: float = 0.0
        # Measured crossover ratio from the one-shot startup probe
        # (config.auto_probe); None means "not probed" and the compiled-in
        # AUTO_DENSE_QUERY_RATIO applies.
        self._auto_ratio: Optional[float] = None
        self._last_published_epoch: Optional[int] = None
        #: vertices settled by index maintenance for the last update applied
        self.last_maintenance_settled = 0

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple],
        directed: bool = False,
        config: Optional[SGraphConfig] = None,
    ) -> "SGraph":
        """Build from ``(src, dst)`` or ``(src, dst, weight)`` tuples."""
        graph = DynamicGraph.from_edges(edges, directed=directed)
        return cls(graph=graph, config=config)

    # -- introspection -----------------------------------------------------------

    @property
    def graph(self) -> DynamicGraph:
        return self._graph

    @property
    def config(self) -> SGraphConfig:
        return self._config

    @property
    def epoch(self) -> int:
        return self._graph.epoch

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def cache(self) -> Optional[QueryCache]:
        """The epoch-guarded result cache, when enabled by the config."""
        return self._cache

    @property
    def last_published_epoch(self) -> Optional[int]:
        """Epoch of the most recent :meth:`VersionedStore.publish` over this
        facade (None before the first publish).  When it equals
        :attr:`epoch`, publishing again is a no-op by construction."""
        return self._last_published_epoch

    @property
    def auto_ratio(self) -> float:
        """Crossover ratio in effect for ``backend="auto"``.

        The probed value once :attr:`SGraphConfig.auto_probe` has measured
        one (see :meth:`_probe_auto_ratio`), else the compiled-in
        :data:`AUTO_DENSE_QUERY_RATIO` fallback.
        """
        if self._auto_ratio is not None:
            return self._auto_ratio
        return AUTO_DENSE_QUERY_RATIO

    def _note_published(self, epoch: int) -> None:
        self._last_published_epoch = epoch
        if (self._config.auto_probe and self._auto_ratio is None
                and self._config.backend == "auto"
                and "distance" in self._config.queries):
            self._auto_ratio = self._probe_auto_ratio()

    def _probe_auto_ratio(self) -> float:
        """One-shot timed probe: measure this machine's actual crossover.

        Runs at the first publish (the moment serving starts and the graph
        is known to be in a queryable state).  Times a cold dense-plane
        build, then the same handful of sample queries on the dict and the
        dense engines, and returns

            (dense build cost) / (per-query dict − dense gap)

        — the number of queries one rebuild must amortize over, which is
        exactly what the EMA heuristic compares its queries-per-interval
        estimate against.  The probe uses the engines directly so its
        sample queries never perturb the EMA itself.  Falls back to
        :data:`AUTO_DENSE_QUERY_RATIO` when the graph is too small to
        measure; the result is clamped to
        [:data:`AUTO_PROBE_MIN_RATIO`, :data:`AUTO_PROBE_MAX_RATIO`].
        """
        import random

        graph = self._graph
        if graph.num_vertices < 2 or graph.num_edges < 1:
            return AUTO_DENSE_QUERY_RATIO
        self._ensure_indexes()
        rng = random.Random(self._config.seed)
        vertices = list(graph.vertices())
        pairs = [
            (rng.choice(vertices), rng.choice(vertices))
            for _ in range(AUTO_PROBE_SAMPLES)
        ]
        # Cold dense build: drop any engine memoized for this epoch so the
        # timer sees the freeze + plane derivation, not a cache hit.
        self._dense_serving.pop("distance", None)
        start = time.perf_counter()
        dense_engine = self._dense_engine("distance")
        build = time.perf_counter() - start
        dict_engine = self._engines["distance"]
        start = time.perf_counter()
        for s, t in pairs:
            dict_engine.best_cost(s, t)
        dict_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for s, t in pairs:
            dense_engine.best_cost(s, t)
        dense_elapsed = time.perf_counter() - start
        gap = (dict_elapsed - dense_elapsed) / len(pairs)
        if gap <= 0.0:
            # Dense is not faster per query here — require the longest
            # query run before paying a rebuild for it.
            return AUTO_PROBE_MAX_RATIO
        return min(max(build / gap, AUTO_PROBE_MIN_RATIO),
                   AUTO_PROBE_MAX_RATIO)

    def snapshot(self) -> GraphSnapshot:
        """Immutable snapshot of the current graph state.

        Memoized per epoch and derived copy-on-write from the previous
        snapshot, so repeated calls between mutations return the same object
        and the freeze cost tracks the churn delta, not |V|+|E|.
        """
        return self._graph.snapshot()

    def index_for(self, family: str) -> HubIndex:
        """The (lazily built) hub index of one query family."""
        self._ensure_indexes()
        try:
            return self._indexes[family]
        except KeyError:
            raise ConfigError(
                f"query family {family!r} not configured; "
                f"configured: {', '.join(self._config.queries)}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"epoch={self.epoch}, families={list(self._config.queries)})"
        )

    # -- index lifecycle -----------------------------------------------------------

    def _ensure_indexes(self) -> None:
        if self._indexes:
            return
        if self._graph.num_vertices == 0:
            raise QueryError("cannot build an index over an empty graph")
        self.rebuild_indexes()

    def rebuild_indexes(self) -> None:
        """(Re)select hubs and rebuild every configured index from scratch.

        Called automatically on first query and when a hub vertex is removed;
        callable manually after massive churn to refresh hub selection.
        """
        cfg = self._config
        num_hubs = min(cfg.num_hubs, self._graph.num_vertices)
        self._indexes = {}
        self._engines = {}
        for family in cfg.queries:
            if family == "distance":
                index = HubIndex.build(
                    self._graph, num_hubs, strategy=cfg.hub_strategy,
                    seed=cfg.seed, semiring=SHORTEST_DISTANCE,
                )
                engine_graph = self._graph
            elif family == "hops":
                index = HubIndex.build(
                    self._unit_view, num_hubs, strategy=cfg.hub_strategy,
                    seed=cfg.seed, semiring=SHORTEST_DISTANCE,
                )
                engine_graph = self._unit_view
            elif family == "reliability":
                self._validate_probability_weights()
                index = HubIndex.build(
                    self._graph, num_hubs, strategy=cfg.hub_strategy,
                    seed=cfg.seed, semiring=RELIABILITY_PRODUCT,
                )
                engine_graph = self._graph
            else:  # capacity
                index = HubIndex.build(
                    self._graph, num_hubs, strategy=cfg.hub_strategy,
                    seed=cfg.seed, semiring=BOTTLENECK_CAPACITY,
                )
                engine_graph = self._graph
            self._indexes[family] = index
            self._engines[family] = PairwiseEngine(
                engine_graph, index=index, policy=cfg.policy,
            )
        self._hubs = set()
        for index in self._indexes.values():
            self._hubs.update(index.hubs)
        # Dense engines froze the *old* tables; the plane chain stays (the
        # CSR id space is still reusable) but serving engines must rebuild.
        self._dense_serving = {}

    def adopt_indexes(self, indexes: Dict[str, HubIndex]) -> None:
        """Install externally constructed indexes (persistence restore path).

        The mapping must cover exactly the configured query families; each
        index must already be built over this instance's graph (or its
        unit-weight view for the ``hops`` family).
        """
        expected = set(self._config.queries)
        if set(indexes) != expected:
            raise ConfigError(
                f"adopt_indexes needs families {sorted(expected)}, "
                f"got {sorted(indexes)}"
            )
        for family, index in indexes.items():
            graph = index.graph
            if isinstance(graph, UnitWeightView):
                graph = graph.base
            if graph is not self._graph:
                raise ConfigError(
                    f"index for family {family!r} was built over a different "
                    "graph object"
                )
        self._indexes = dict(indexes)
        self._engines = {}
        for family, index in self._indexes.items():
            # Bind each engine to the exact graph (or view) the index was
            # built over, so the engine's identity check holds.
            self._engines[family] = PairwiseEngine(
                index.graph, index=index, policy=self._config.policy
            )
        self._hubs = set()
        for index in self._indexes.values():
            self._hubs.update(index.hubs)
        self._dense_serving = {}

    def _validate_probability_weights(self) -> None:
        for src, dst, weight in self._graph.edges():
            if not 0.0 < weight <= 1.0:
                raise ConfigError(
                    "the reliability family needs every edge weight in "
                    f"(0, 1]; edge ({src}, {dst}) has weight {weight}"
                )

    # -- mutation (mutate graph first, notify indexes second) -----------------------

    def add_vertex(self, vertex: int) -> bool:
        """Add an isolated vertex.  No index maintenance needed."""
        return self._graph.add_vertex(vertex)

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Insert an edge, or change its weight if it already exists."""
        graph = self._graph
        old_weight: Optional[float] = None
        if graph.has_edge(src, dst):
            old_weight = graph.edge_weight(src, dst)
            if old_weight == weight:
                self.last_maintenance_settled = 0
                return
        settled = 0
        if old_weight is not None:
            # Weight change: remove-then-reinsert so every index notification
            # observes graph state consistent with the event.  The hop index
            # is topology-only and skips the churn entirely.
            graph.remove_edge(src, dst)
            if self._indexes:
                for family, index in self._indexes.items():
                    if family == "hops":
                        continue
                    index.notify_edge_deleted(src, dst, old_weight)
                    settled += index.settled_last_update
        graph.add_edge(src, dst, weight)
        if self._indexes:
            for family, index in self._indexes.items():
                if old_weight is not None and family == "hops":
                    continue  # topology unchanged; hop index unaffected
                w_new = 1.0 if family == "hops" else weight
                index.notify_edge_inserted(src, dst, w_new)
                settled += index.settled_last_update
        self.last_maintenance_settled = settled

    def remove_edge(self, src: int, dst: int) -> None:
        """Delete an edge (raises if absent; see :meth:`discard_edge`)."""
        old_weight = self._graph.edge_weight(src, dst)
        self._graph.remove_edge(src, dst)
        settled = 0
        if self._indexes:
            for family, index in self._indexes.items():
                w_old = 1.0 if family == "hops" else old_weight
                index.notify_edge_deleted(src, dst, w_old)
                settled += index.settled_last_update
        self.last_maintenance_settled = settled

    def discard_edge(self, src: int, dst: int) -> bool:
        """Delete an edge if present.  Returns True if removed."""
        if not self._graph.has_edge(src, dst):
            return False
        self.remove_edge(src, dst)
        return True

    def remove_vertex(self, vertex: int) -> None:
        """Remove a vertex and its incident edges.

        If the vertex serves as a hub, the indexes are rebuilt with a fresh
        hub selection (rare in practice; hubs are high-degree vertices).
        """
        graph = self._graph
        incident: List[Tuple[int, int]] = [
            (vertex, dst) for dst, _w in graph.out_items(vertex)
        ]
        if graph.directed:
            incident += [(src, vertex) for src, _w in graph.in_items(vertex)]
        for src, dst in incident:
            self.discard_edge(src, dst)
        graph.remove_vertex(vertex)
        if self._indexes and vertex in self._hubs:
            self.rebuild_indexes()

    def apply_update(self, update: EdgeUpdate) -> None:
        """Apply one stream update (redundant deletes are tolerated)."""
        if update.kind is UpdateKind.INSERT:
            self.add_edge(update.src, update.dst, update.weight)
        else:
            self.discard_edge(update.src, update.dst)

    def apply(self, updates: Iterable[EdgeUpdate]) -> int:
        """Apply a batch of updates; returns how many were applied."""
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    # -- queries ------------------------------------------------------------------

    def distance(
        self, source: int, target: int, tolerance: float = 0.0
    ) -> QueryResult:
        """Weighted shortest-path cost from source to target.

        ``tolerance`` requests a bounded-error approximation: the result is a
        real path cost at most ``(1 + tolerance)`` times the optimum, letting
        many more queries resolve directly from the index bounds.
        """
        return self._run(QueryKind.DISTANCE, "distance", source, target,
                         tolerance=tolerance)

    def hop_distance(self, source: int, target: int) -> QueryResult:
        """Unweighted shortest-path length (hop count)."""
        return self._run(QueryKind.HOPS, "hops", source, target)

    def bottleneck(self, source: int, target: int) -> QueryResult:
        """Widest-path capacity from source to target."""
        return self._run(QueryKind.BOTTLENECK, "capacity", source, target)

    def reliability(self, source: int, target: int) -> QueryResult:
        """Most-reliable-path probability (edge weights are probabilities)."""
        return self._run(QueryKind.RELIABILITY, "reliability", source, target)

    def shortest_path(self, source: int, target: int) -> QueryResult:
        """Weighted shortest path: cost plus an explicit vertex list.

        The result's :attr:`~repro.core.pairwise.QueryResult.path` is None
        when the target is unreachable.
        """
        return self._run_path(QueryKind.DISTANCE, "distance", source, target)

    def widest_path(self, source: int, target: int) -> QueryResult:
        """Bottleneck-optimal path: capacity plus an explicit vertex list."""
        return self._run_path(QueryKind.BOTTLENECK, "capacity", source, target)

    def _run_path(
        self, kind: QueryKind, family: str, source: int, target: int
    ) -> QueryResult:
        self._ensure_indexes()
        if family not in self._engines:
            raise ConfigError(
                f"{kind.value} path queries need the {family!r} family in "
                f"SGraphConfig.queries (configured: {self._config.queries})"
            )
        engine = self._serving_engine(family)
        start = time.perf_counter()
        value, path, stats = engine.best_path(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=kind,
            source=source,
            target=target,
            value=value,
            stats=stats,
            epoch=self.epoch,
            path=path,
        )

    def reachable(self, source: int, target: int) -> QueryResult:
        """Whether any source→target path exists.

        Served by whichever configured family answers cheapest: the first of
        distance / hops / capacity present in the configuration.
        """
        self._ensure_indexes()
        family = self._config.queries[0]
        engine = self._serving_engine(family)
        start = time.perf_counter()
        exists, stats = engine.feasible(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.REACHABILITY,
            source=source,
            target=target,
            value=1.0 if exists else 0.0,
            stats=stats,
            epoch=self.epoch,
        )

    def within_distance(
        self, source: int, target: int, budget: float
    ) -> QueryResult:
        """Whether the weighted distance source→target is ≤ ``budget``.

        Usually answered from the index bounds alone (see
        :meth:`PairwiseEngine.within_budget`); the result value is 1.0/0.0.
        """
        return self._run_budget("distance", source, target, budget)

    def capacity_at_least(
        self, source: int, target: int, budget: float
    ) -> QueryResult:
        """Whether some path of capacity ≥ ``budget`` exists."""
        return self._run_budget("capacity", source, target, budget)

    def reliability_at_least(
        self, source: int, target: int, budget: float
    ) -> QueryResult:
        """Whether some path of delivery probability ≥ ``budget`` exists."""
        return self._run_budget("reliability", source, target, budget)

    def _run_budget(
        self, family: str, source: int, target: int, budget: float
    ) -> QueryResult:
        self._ensure_indexes()
        if family not in self._engines:
            raise ConfigError(
                f"budget queries on {family!r} need that family in "
                f"SGraphConfig.queries (configured: {self._config.queries})"
            )
        engine = self._serving_engine(family)
        start = time.perf_counter()
        ok, stats = engine.within_budget(source, target, budget)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(
            kind=QueryKind.REACHABILITY,
            source=source,
            target=target,
            value=1.0 if ok else 0.0,
            stats=stats,
            epoch=self.epoch,
        )

    def distance_many(
        self, source: int, targets: Iterable[int]
    ) -> Dict[int, float]:
        """Shortest distances from ``source`` to every target in one pass.

        Much cheaper than per-target :meth:`distance` calls when the target
        set is large: index-closable targets cost nothing and the rest share
        a single search (see :meth:`PairwiseEngine.one_to_many`).  Use
        :meth:`distance_many_result` when the combined search counters are
        wanted alongside the values.
        """
        return self.distance_many_result(source, targets).values

    def distance_many_result(
        self, source: int, targets: Iterable[int]
    ) -> ManyQueryResult:
        """Like :meth:`distance_many`, surfacing the combined counters.

        Returns a :class:`~repro.core.pairwise.ManyQueryResult` whose
        ``stats`` record covers the entire shared search — batched queries
        are observable exactly like pairwise ones.  Under
        ``backend="dense"`` the search runs on the flat-array plane.
        """
        self._ensure_indexes()
        if "distance" not in self._engines:
            raise ConfigError(
                "distance_many needs the 'distance' family in "
                f"SGraphConfig.queries (configured: {self._config.queries})"
            )
        engine = self._serving_engine("distance")
        start = time.perf_counter()
        results, stats = engine.one_to_many(source, list(targets))
        stats.elapsed = time.perf_counter() - start
        return ManyQueryResult(
            kind=QueryKind.DISTANCE,
            source=source,
            values=results,
            stats=stats,
            epoch=self.epoch,
        )

    def nearest(self, source: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` closest vertices to ``source`` by weighted distance.

        Returns ``(vertex, distance)`` pairs sorted by distance (excluding
        the source itself); fewer than ``k`` when the component is small.
        A plain truncated Dijkstra — neighborhood queries don't benefit
        from pairwise bounds, but they round out the query surface.
        """
        if k < 1:
            raise QueryError("k must be >= 1")
        return self._expand_from(source, max_results=k, radius=None)

    def within(self, source: int, radius: float) -> List[Tuple[int, float]]:
        """All vertices within weighted distance ``radius`` of ``source``."""
        if radius < 0:
            raise QueryError("radius must be non-negative")
        return self._expand_from(source, max_results=None, radius=radius)

    def _expand_from(
        self,
        source: int,
        max_results: Optional[int],
        radius: Optional[float],
    ) -> List[Tuple[int, float]]:
        """Truncated Dijkstra behind :meth:`nearest` / :meth:`within`.

        Under ``backend="dense"`` (with the distance family configured)
        the expansion walks the per-epoch CSR slices of the dense serving
        plane instead of the live dict adjacency — same distances, flat
        arrays.  ``backend="auto"`` does the same once the crossover
        heuristic favors dense (the expansion counts as a query).
        Equidistant vertices may order differently between the two planes
        (heap tie-breaking); distances always agree.
        """
        graph = self._graph
        if not graph.has_vertex(source):
            raise QueryError(f"query endpoint {source} is not in the graph")
        backend = self._config.backend
        if (backend != "dict" and "distance" in self._config.queries
                and (backend == "dense" or self._note_query())):
            self._ensure_indexes()
            engine = self._dense_engine("distance")
            if engine.dense_plane is not None:
                return engine.expand(source, max_results, radius)
        return expand_from_graph(graph, source, max_results, radius)

    # -- dense serving (backend="dense" / "auto") ---------------------------------

    def _serving_engine(self, family: str) -> PairwiseEngine:
        """The engine answering queries for ``family``.

        With ``backend="dense"`` the min-plus families are always served by
        a per-epoch dense engine (flat arrays over the current snapshot).
        With ``backend="auto"`` the same engine serves them once the
        workload looks query-heavy (see :meth:`serving_backend`); under
        heavy churn auto skips the per-epoch dense rebuild and stays on the
        dict path.  Everything else — and every family under
        ``backend="dict"`` — uses the live dict engine.  Value, path,
        budget, and one-to-many queries all route through here.
        """
        if family in ("distance", "hops"):
            backend = self._config.backend
            if backend == "dense" or (backend == "auto"
                                      and self._note_query()):
                return self._dense_engine(family)
        return self._engines[family]

    def _auto_fold(self) -> Tuple[float, int]:
        """Project the auto-crossover state to the current epoch.

        Each mutation interval that closed since the last observation folds
        its query count into the EMA; extra query-free intervals decay it.
        Pure projection — callers commit by writing the state back.
        """
        ema, queries = self._auto_ema, self._auto_queries
        gap = self.epoch - self._auto_epoch
        if gap > 0:
            w = AUTO_EMA_WEIGHT
            ema = (1.0 - w) * ema + w * queries
            # gap mutations closed gap intervals; the first carried
            # `queries` queries, the other gap-1 carried none.  Cap the
            # exponent — past ~60 halvings the decay is already total.
            ema *= (1.0 - w) ** min(gap - 1, 60)
            queries = 0
        return ema, queries

    def _note_query(self) -> bool:
        """Record one query and decide dict vs dense for ``backend="auto"``.

        Dense when the recent query:update ratio (EMA) or the current
        run of uninterrupted queries reaches AUTO_DENSE_QUERY_RATIO.
        """
        ema, queries = self._auto_fold()
        queries += 1
        self._auto_epoch = self.epoch
        self._auto_ema = ema
        self._auto_queries = queries
        ratio = self.auto_ratio
        return ema >= ratio or queries >= ratio

    def serving_backend(self, family: str = "distance") -> str:
        """Which plane the *next* ``family`` query would be served from.

        A non-destructive peek at the crossover decision — returns
        ``"dense"`` or ``"dict"`` without recording a query.
        """
        if family not in ("distance", "hops"):
            return "dict"
        backend = self._config.backend
        if backend in ("dense", "dict"):
            return backend
        ema, queries = self._auto_fold()
        ratio = self.auto_ratio
        dense = ema >= ratio or queries + 1 >= ratio
        return "dense" if dense else "dict"

    def serve(self, workers: int = 2, store=None, capacity: int = 4,
              transport: str = "shm", chunk: Optional[int] = None,
              delta: bool = False, **transport_options):
        """Serve this facade from ``workers`` reader processes.

        Publishes each epoch's dense plane through the chosen transport and
        fans queries across N reader processes running the bit-identical
        flat-array hot path; ingest through this facade continues
        concurrently and each :meth:`~repro.serving.ServeSession.publish`
        hands readers the new epoch.

        ``transport="shm"`` (default) lays each plane into named
        shared-memory segments the readers map zero-copy — one box, no
        copies.  ``transport="tcp"`` starts a loopback-or-LAN plane server
        instead: readers (the local pool, plus any remote ``repro attach``
        fleet) fetch each published plane over a socket exactly once into a
        digest-verified local cache.  ``delta=True`` (TCP only) switches
        those fetches to chunk-addressed deltas: each reader ships only
        the chunks that changed since the plane it already caches — O(Δ)
        bytes per epoch, digest-verified to be bit-identical to a full
        fetch, falling back to a full frame when the reader's base left
        the server's ``cache_planes`` publish history.  TCP options pass
        through keyword arguments (``host=``, ``port=``,
        ``cache_planes=``, ``retry=``, ``backoff=``, ``max_backoff=``,
        ``op_timeout=``, ``idle_timeout=``).  ``chunk`` overrides how
        many queries batched verbs bundle per pool message.

        The session is fault tolerant by default: crashed workers are
        reaped and re-forked onto the current epoch (``respawn=False``
        disables this; ``respawn_limit``/``respawn_window`` tune the
        circuit breaker that stops a crash loop), TCP readers reconnect
        with jittered exponential backoff under per-op deadlines, and
        workers that cannot reach the server keep answering from their
        last-acquired plane (counted as ``stale_serves`` in
        ``stats_row()``).

        Returns a :class:`repro.serving.ServeSession` (usable as a context
        manager); requires the distance family and a non-dict backend.
        """
        from repro.serving.pool import ServeSession

        return ServeSession(self, workers=workers, store=store,
                            capacity=capacity, transport=transport,
                            chunk=chunk, delta=delta, **transport_options)

    def _dense_engine(self, family: str) -> PairwiseEngine:
        """Per-epoch dense-served engine for one min-plus family (memoized).

        Built at the first query after a mutation: freeze the live index
        (O(Δ) — derived from the previous freeze), snapshot the graph
        (copy-on-write), and derive the dense plane from the previous
        epoch's plane.  Queries between mutations reuse the cached engine.
        """
        entry = self._dense_serving.get(family)
        if entry is not None and entry[0] == self.epoch:
            return entry[1]
        snapshot = self.snapshot()
        index = self._indexes[family]
        fwd, bwd = index.freeze()
        view_graph = (UnitWeightView(snapshot) if family == "hops"
                      else snapshot)
        frozen = HubIndex.from_tables(
            view_graph, index.hubs, index.semiring, fwd,
            backward_tables=bwd if snapshot.directed else None,
            copy=False,
        )
        plane = DensePlane.build(
            snapshot, index.hubs, fwd, bwd,
            unit_weights=(family == "hops"),
            prev=self._dense_planes.get(family),
        )
        self._dense_planes[family] = plane
        workspace = self._workspaces.get(family)
        if workspace is None:
            workspace = self._workspaces[family] = SearchWorkspace()
        engine = PairwiseEngine(
            view_graph, index=frozen, policy=self._config.policy, dense=plane,
            workspace=workspace,
        )
        self._dense_serving[family] = (self.epoch, engine)
        return engine

    def workspace_stats(self, family: str = "distance") -> Dict[str, int]:
        """Lifetime reuse counters of one family's dense search workspace.

        All zeros until the family has served a dense query.  In steady
        state ``workspace_allocs`` stays at 1 across epochs (the workspace
        outlives each per-epoch engine) while ``workspace_hits`` /
        ``workspace_resets`` count reused searches.
        """
        workspace = self._workspaces.get(family)
        if workspace is None:
            return {
                "workspace_vertices": 0,
                "workspace_allocs": 0,
                "workspace_hits": 0,
                "workspace_resets": 0,
                "touched_reset": 0,
            }
        return workspace.stats_row()

    def _run(
        self,
        kind: QueryKind,
        family: str,
        source: int,
        target: int,
        tolerance: float = 0.0,
    ) -> QueryResult:
        self._ensure_indexes()
        if family not in self._engines:
            raise ConfigError(
                f"{kind.value} queries need the {family!r} family in "
                f"SGraphConfig.queries (configured: {self._config.queries})"
            )
        cache_key = None
        if self._cache is not None:
            cache_key = (kind, source, target, tolerance)
            cached = self._cache.get(cache_key, self.epoch)
            if cached is not None:
                return cached  # type: ignore[return-value]
        engine = self._serving_engine(family)
        start = time.perf_counter()
        value, stats = engine.best_cost(source, target, tolerance=tolerance)
        stats.elapsed = time.perf_counter() - start
        result = QueryResult(
            kind=kind,
            source=source,
            target=target,
            value=value,
            stats=stats,
            epoch=self.epoch,
        )
        if self._cache is not None:
            self._cache.put(cache_key, self.epoch, result)
        return result
